#![deny(missing_docs)]
//! # rtr-datagen — synthetic BibNet and QLog datasets
//!
//! The paper evaluates on two proprietary datasets we cannot obtain:
//!
//! * **BibNet** — 2M nodes / 25M edges extracted from DBLP and Citeseer
//!   (papers, authors, terms, venues; directed citations, undirected
//!   otherwise), plus a 28-venue effectiveness subgraph;
//! * **QLog** — a 2006 commercial search-engine query log (2M nodes / 4M
//!   edges; phrase–URL click graph with click-count weights).
//!
//! Following the reproduction's substitution rule (DESIGN.md §4), this crate
//! generates synthetic equivalents that preserve the *structural tension the
//! paper's measures exploit*: the co-existence of
//!
//! * **important hubs** — flagship venues / portal URLs reachable from
//!   everywhere (high F-Rank) but leaking return walks (low T-Rank), and
//! * **specific niche nodes** — focused venues / single-concept URLs that
//!   are harder to reach but reliably lead back to their topic.
//!
//! Both generators are fully seeded (ChaCha) so every experiment in the
//! workspace is reproducible bit-for-bit.
//!
//! ## Modules
//!
//! * [`zipf`] — seeded Zipf/power-law sampling (popularity skews).
//! * [`bibnet`] — topic-structured bibliographic network generator with
//!   per-paper ground truth (venue, authors) for Tasks 1–2.
//! * [`qlog`] — concept-structured phrase–URL click graph with equivalence
//!   classes for Tasks 3–4.
//!
//! ## Example
//!
//! ```
//! use rtr_datagen::bibnet::{BibNet, BibNetConfig};
//!
//! let net = BibNet::generate(&BibNetConfig::tiny(), 42);
//! assert!(net.graph.node_count() > 0);
//! // Every paper has a venue and at least one author recorded as ground truth.
//! assert_eq!(net.paper_venue.len(), net.papers.len());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bibnet;
pub mod qlog;
pub mod zipf;

pub use bibnet::{BibNet, BibNetConfig};
pub use qlog::{QLog, QLogConfig};
pub use zipf::Zipf;
