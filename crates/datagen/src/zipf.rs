//! Seeded Zipf sampling.
//!
//! Real bibliographic and query-log graphs are power-law distributed in
//! venue popularity, author productivity, term frequency and URL clicks;
//! the paper's growth analysis (Sect. V-B1) explicitly leans on the
//! densification power law. This sampler draws ranks `0..n` with
//! `p(k) ∝ 1/(k+1)^s` via a precomputed CDF and binary search —
//! `O(n)` setup, `O(log n)` per draw.

use rand::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf distribution over `n` ranks with exponent `s > 0`.
    ///
    /// `s` near 1 gives the classic heavy tail; larger `s` concentrates mass
    /// on the top ranks.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s > 0.0 && s.is_finite(), "exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the right edge.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true; `new` requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draw one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index with cdf >= u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("NaN in CDF"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Draw a power-law-distributed positive integer in `[1, max]` with
/// exponent `s` (used for click counts / citation counts).
pub fn power_law_count<R: Rng + ?Sized>(rng: &mut R, max: usize, s: f64) -> usize {
    Zipf::new(max, s).sample(rng) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.1);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_is_decreasing() {
        let z = Zipf::new(20, 1.0);
        for k in 0..19 {
            assert!(z.pmf(k) > z.pmf(k + 1));
        }
    }

    #[test]
    fn sampling_matches_pmf() {
        let z = Zipf::new(10, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 200_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let freq = count as f64 / n as f64;
            assert!(
                (freq - z.pmf(k)).abs() < 0.01,
                "rank {k}: freq {freq} vs pmf {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(100, 1.2);
        let a: Vec<usize> = {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn power_law_count_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let c = power_law_count(&mut rng, 8, 1.5);
            assert!((1..=8).contains(&c));
        }
    }

    #[test]
    fn larger_exponent_concentrates_head() {
        let flat = Zipf::new(100, 0.5);
        let steep = Zipf::new(100, 2.5);
        assert!(steep.pmf(0) > flat.pmf(0));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_support_rejected() {
        Zipf::new(0, 1.0);
    }
}
