//! Synthetic query-log click graph ("QLog").
//!
//! Simulates the paper's 2006 commercial search-engine log (Sect. VI): an
//! undirected bipartite graph of search phrases and clicked URLs, edge
//! weight = click count.
//!
//! Latent structure:
//!
//! * **concepts** — each concept has a keyword set; its phrases are
//!   *equivalent* (same non-stop keyword multiset, different orderings /
//!   stopword padding), giving the paper's Task 4 ground truth
//!   automatically;
//! * **concept URLs** — pages about one concept (specific);
//! * **portal URLs** — hub sites attached to many concepts with heavy click
//!   counts (important but unspecific), mirroring the paper's "important
//!   'travel' site" example for Task 3.

use crate::zipf::Zipf;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rtr_graph::{Graph, GraphBuilder, NodeId, NodeTypeId};

/// Size and shape knobs for the QLog generator.
#[derive(Clone, Debug)]
pub struct QLogConfig {
    /// Number of latent concepts.
    pub concepts: usize,
    /// Keyword vocabulary size.
    pub keywords: usize,
    /// Keywords per concept, inclusive range.
    pub keywords_per_concept: (usize, usize),
    /// Equivalent phrases per concept, inclusive range.
    pub phrases_per_concept: (usize, usize),
    /// Concept-specific URLs per concept, inclusive range.
    pub urls_per_concept: (usize, usize),
    /// Number of portal (hub) URLs.
    pub portal_urls: usize,
    /// Fraction of concepts each portal attaches to.
    pub portal_attach_fraction: f64,
    /// Maximum click count per edge.
    pub max_clicks: usize,
    /// Zipf exponent of click counts.
    pub click_s: f64,
    /// Probability that a given (phrase, concept URL) pair has any clicks.
    pub click_pair_prob: f64,
    /// Probability that a phrase carries a misclick — a low-weight edge to
    /// a random unrelated URL. Real logs are noisy: equivalent phrases share
    /// *overlapping*, not identical, click sets, which is what keeps
    /// common-neighbor heuristics (AdamicAdar) from trivially solving
    /// Task 4.
    pub misclick_prob: f64,
}

impl QLogConfig {
    /// Minimal instance for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            concepts: 20,
            keywords: 60,
            keywords_per_concept: (2, 3),
            phrases_per_concept: (2, 4),
            urls_per_concept: (2, 5),
            portal_urls: 3,
            portal_attach_fraction: 0.5,
            max_clicks: 20,
            click_s: 1.2,
            click_pair_prob: 0.8,
            misclick_prob: 0.5,
        }
    }

    /// Mid-size instance for CI-speed experiment runs (≈5k nodes).
    pub fn small() -> Self {
        Self {
            concepts: 700,
            keywords: 1_500,
            keywords_per_concept: (2, 4),
            phrases_per_concept: (2, 5),
            urls_per_concept: (2, 6),
            portal_urls: 12,
            portal_attach_fraction: 0.1,
            max_clicks: 50,
            click_s: 1.2,
            click_pair_prob: 0.6,
            misclick_prob: 0.5,
        }
    }

    /// Effectiveness-subgraph scale (paper: 23,665 nodes / 74,504 edges).
    pub fn subgraph_scale() -> Self {
        Self {
            concepts: 3_500,
            keywords: 6_000,
            keywords_per_concept: (2, 4),
            phrases_per_concept: (2, 5),
            urls_per_concept: (2, 6),
            portal_urls: 40,
            portal_attach_fraction: 0.08,
            max_clicks: 50,
            click_s: 1.2,
            click_pair_prob: 0.6,
            misclick_prob: 0.5,
        }
    }

    /// Efficiency-study scale (QLog is sparser than BibNet: the paper
    /// reports 2M nodes / 4M edges, average degree ≈ 2).
    pub fn full_scale() -> Self {
        Self {
            concepts: 35_000,
            keywords: 40_000,
            keywords_per_concept: (2, 4),
            phrases_per_concept: (2, 5),
            urls_per_concept: (2, 6),
            portal_urls: 150,
            portal_attach_fraction: 0.02,
            max_clicks: 50,
            click_s: 1.2,
            click_pair_prob: 0.6,
            misclick_prob: 0.4,
        }
    }

    fn validate(&self) {
        assert!(self.concepts > 0 && self.keywords > 0);
        assert!(self.keywords_per_concept.0 >= 1);
        assert!(self.keywords_per_concept.1 <= self.keywords);
        assert!(self.phrases_per_concept.0 >= 1);
        assert!(self.urls_per_concept.0 >= 1);
        assert!((0.0..=1.0).contains(&self.portal_attach_fraction));
        assert!((0.0..=1.0).contains(&self.click_pair_prob));
        assert!((0.0..=1.0).contains(&self.misclick_prob));
        assert!(self.max_clicks >= 1);
    }
}

/// A generated query-log graph with ground truth.
#[derive(Clone, Debug)]
pub struct QLog {
    /// The bipartite click graph (portals first, then concept-by-concept
    /// phrases and URLs, so prefix snapshots model log growth).
    pub graph: Graph,
    /// All phrase nodes.
    pub phrases: Vec<NodeId>,
    /// All URL nodes (portals first).
    pub urls: Vec<NodeId>,
    /// Portal URL nodes.
    pub portals: Vec<NodeId>,
    /// Concept index of each phrase (parallel to `phrases`).
    pub phrase_concept: Vec<usize>,
    /// Phrases of each concept (Task 4 ground truth: equivalents share a
    /// concept, i.e. the same keyword multiset).
    pub concept_phrases: Vec<Vec<NodeId>>,
    /// Concept-specific URLs of each concept (excludes portals).
    pub concept_urls: Vec<Vec<NodeId>>,
}

impl QLog {
    /// Generate a query log from `config` with a fixed `seed`.
    pub fn generate(config: &QLogConfig, seed: u64) -> Self {
        config.validate();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        let phrase_ty = b.register_type("phrase");
        let url_ty = b.register_type("url");

        let click_dist = Zipf::new(config.max_clicks, config.click_s);
        let keyword_pop = Zipf::new(config.keywords, 1.0);

        // Portals first (they exist before any specific concept trends).
        let mut portals = Vec::with_capacity(config.portal_urls);
        for p in 0..config.portal_urls {
            portals.push(b.add_labeled_node(url_ty, &format!("url:portal:{p}")));
        }

        let mut phrases = Vec::new();
        let mut urls = portals.clone();
        let mut phrase_concept = Vec::new();
        let mut concept_phrases = Vec::with_capacity(config.concepts);
        let mut concept_urls = Vec::with_capacity(config.concepts);

        for c in 0..config.concepts {
            // Keyword signature: sorted distinct keyword ids.
            let k = rng.gen_range(config.keywords_per_concept.0..=config.keywords_per_concept.1);
            let mut kws: Vec<usize> = Vec::with_capacity(k);
            let mut guard = 0;
            while kws.len() < k && guard < 100 {
                guard += 1;
                let kw = keyword_pop.sample(&mut rng);
                if !kws.contains(&kw) {
                    kws.push(kw);
                }
            }
            kws.sort_unstable();
            let signature: String = kws
                .iter()
                .map(|kw| format!("k{kw}"))
                .collect::<Vec<_>>()
                .join("+");

            // Equivalent phrases: same signature, variant index distinguishes
            // orderings / stopword padding ("the apple ipod" vs "ipod of apple").
            let n_phrases =
                rng.gen_range(config.phrases_per_concept.0..=config.phrases_per_concept.1);
            let mut my_phrases = Vec::with_capacity(n_phrases);
            for v in 0..n_phrases {
                let ph = b.add_labeled_node(phrase_ty, &format!("phrase:{signature}:v{v}"));
                my_phrases.push(ph);
                phrases.push(ph);
                phrase_concept.push(c);
            }

            // Concept URLs.
            let n_urls = rng.gen_range(config.urls_per_concept.0..=config.urls_per_concept.1);
            let mut my_urls = Vec::with_capacity(n_urls);
            for u in 0..n_urls {
                let url = b.add_labeled_node(url_ty, &format!("url:{signature}:{u}"));
                my_urls.push(url);
                urls.push(url);
            }

            // Clicks: phrase -> concept URL. Each phrase has its own
            // canonical URL (always clicked, heavy traffic); the remaining
            // pairs connect probabilistically, so equivalent phrases share
            // overlapping-but-distinct click sets.
            for &ph in &my_phrases {
                let canonical = rng.gen_range(0..my_urls.len());
                for (rank, &url) in my_urls.iter().enumerate() {
                    if rank == canonical || rng.gen_bool(config.click_pair_prob) {
                        let mut clicks =
                            (click_dist.sample(&mut rng) + 1) as f64 / (rank + 1) as f64;
                        if rank == canonical {
                            clicks *= 3.0;
                        }
                        b.add_undirected_edge(ph, url, clicks.max(1.0));
                    }
                }
            }

            // Portal attachment: popular hub gets clicks from this concept.
            for &portal in &portals {
                if rng.gen_bool(config.portal_attach_fraction) {
                    // Portals draw heavy traffic: scale clicks up.
                    for &ph in &my_phrases {
                        if rng.gen_bool(0.8) {
                            let clicks = (click_dist.sample(&mut rng) + 2) as f64 * 2.0;
                            b.add_undirected_edge(ph, portal, clicks);
                        }
                    }
                }
            }

            concept_phrases.push(my_phrases);
            concept_urls.push(my_urls);
        }

        // Misclick noise: low-weight edges from phrases to unrelated URLs.
        for &ph in &phrases {
            if rng.gen_bool(config.misclick_prob) && !urls.is_empty() {
                let url = urls[rng.gen_range(0..urls.len())];
                b.add_undirected_edge(ph, url, 1.0);
            }
        }

        QLog {
            graph: b.build(),
            phrases,
            urls,
            portals,
            phrase_concept,
            concept_phrases,
            concept_urls,
        }
    }

    /// The `phrase` node type id.
    pub fn phrase_type(&self) -> NodeTypeId {
        self.graph.types().get("phrase").expect("registered")
    }

    /// The `url` node type id.
    pub fn url_type(&self) -> NodeTypeId {
        self.graph.types().get("url").expect("registered")
    }

    /// The equivalent phrases of `phrase` (same concept), excluding itself —
    /// Task 4's ground truth.
    pub fn equivalents(&self, phrase: NodeId) -> Vec<NodeId> {
        let pos = self
            .phrases
            .iter()
            .position(|&p| p == phrase)
            .expect("not a phrase node");
        let c = self.phrase_concept[pos];
        self.concept_phrases[c]
            .iter()
            .copied()
            .filter(|&p| p != phrase)
            .collect()
    }

    /// The URLs clicked from `phrase` (graph adjacency) — Task 3 samples its
    /// ground truth from these.
    pub fn clicked_urls(&self, phrase: NodeId) -> Vec<NodeId> {
        let url_ty = self.url_type();
        self.graph
            .out_neighbors(phrase)
            .iter()
            .copied()
            .filter(|&v| self.graph.node_type(v) == url_ty)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> QLog {
        QLog::generate(&QLogConfig::tiny(), 42)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = QLog::generate(&QLogConfig::tiny(), 5);
        let b = QLog::generate(&QLogConfig::tiny(), 5);
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }

    #[test]
    fn graph_is_bipartite() {
        let q = log();
        let phrase_ty = q.phrase_type();
        let url_ty = q.url_type();
        for v in q.graph.nodes() {
            let vt = q.graph.node_type(v);
            for &n in q.graph.out_neighbors(v) {
                let nt = q.graph.node_type(n);
                assert_ne!(vt, nt, "same-type edge {v:?}->{n:?}");
                assert!(nt == phrase_ty || nt == url_ty);
            }
        }
    }

    #[test]
    fn every_phrase_clicks_something() {
        let q = log();
        for &ph in &q.phrases {
            assert!(!q.clicked_urls(ph).is_empty(), "{ph:?} has no clicks");
        }
    }

    #[test]
    fn equivalents_share_signature() {
        let q = log();
        for &ph in &q.phrases {
            let sig = |v: NodeId| {
                let label = q.graph.label(v);
                label
                    .trim_start_matches("phrase:")
                    .rsplit_once(":v")
                    .map(|(s, _)| s.to_owned())
                    .expect("phrase label format")
            };
            for eq in q.equivalents(ph) {
                assert_eq!(sig(ph), sig(eq), "equivalents with different keywords");
            }
        }
    }

    #[test]
    fn equivalents_exclude_self() {
        let q = log();
        for &ph in &q.phrases {
            assert!(!q.equivalents(ph).contains(&ph));
        }
    }

    #[test]
    fn portals_have_higher_degree() {
        let q = QLog::generate(&QLogConfig::tiny(), 9);
        let portal_avg: f64 = q
            .portals
            .iter()
            .map(|&p| q.graph.total_degree(p) as f64)
            .sum::<f64>()
            / q.portals.len() as f64;
        let concept_urls: Vec<NodeId> = q
            .urls
            .iter()
            .copied()
            .filter(|u| !q.portals.contains(u))
            .collect();
        let concept_avg: f64 = concept_urls
            .iter()
            .map(|&u| q.graph.total_degree(u) as f64)
            .sum::<f64>()
            / concept_urls.len() as f64;
        assert!(
            portal_avg > concept_avg,
            "portal avg {portal_avg} <= concept avg {concept_avg}"
        );
    }

    #[test]
    fn click_weights_are_positive_multiples() {
        let q = log();
        for v in q.graph.nodes() {
            for (_, w) in q.graph.out_edges_weighted(v) {
                assert!(w >= 1.0, "click weight {w} < 1");
            }
        }
    }

    #[test]
    fn equivalents_connect_only_through_urls() {
        // Phrases never link to phrases directly: Task 4's ground truth is
        // 2-hop, the specificity-dominant regime the paper reports.
        let q = log();
        let phrase_ty = q.phrase_type();
        for &ph in &q.phrases {
            for &n in q.graph.out_neighbors(ph) {
                assert_ne!(q.graph.node_type(n), phrase_ty);
            }
        }
    }

    #[test]
    fn average_degree_is_low_like_the_paper() {
        // Paper QLog: 2M nodes, 4M edges -> avg degree ~2 per direction.
        let q = QLog::generate(&QLogConfig::subgraph_scale(), 3);
        let d = q.graph.average_degree();
        assert!(d < 15.0, "QLog should stay sparse, got avg degree {d}");
    }
}
