//! Truncated commute time [Sarkar & Moore 2007] — a dual-sensed baseline
//! (paper Figs. 9–10, T = 10 "as recommended, which we find robust").
//!
//! The truncated hitting time `h_T(a → b) = E[min(τ_{a→b}, T)]` caps the
//! walk at `T` steps; the commute time is the symmetrized sum
//! `h_T(q→v) + h_T(v→q)`, and *smaller is closer*, so the score is its
//! negation.
//!
//! Computation:
//! * `h_T(v → q)` for **all** `v` simultaneously: exact dynamic program over
//!   the remaining budget, `O(T · |E|)`;
//! * `h_T(q → v)` for all `v`: Monte-Carlo first-hit estimation from `W`
//!   truncated walks out of `q` (`O(W · T)`), the approach Sarkar & Moore
//!   themselves use for the forward direction.
//!
//! The customized variant (paper Fig. 10, "TCommute+") weights the two
//! directions: `score_β = -[(1-β)·h_T(q→v) + β·h_T(v→q)]` — importance
//! prefers quick arrival *from* the query, specificity quick return *to* it.

use crate::measure::{per_node_linear, ProximityMeasure};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rtr_core::{CoreError, Query, ScoreVec};
use rtr_graph::{Graph, NodeId};

/// Truncated commute time with horizon `T`.
#[derive(Clone, Copy, Debug)]
pub struct TCommute {
    /// Truncation horizon (paper: 10).
    pub t: usize,
    /// Monte-Carlo walks for the forward hitting time.
    pub walks: usize,
    /// RNG seed.
    pub seed: u64,
    /// Direction weight β ∈ \[0,1\]; 0.5 = the symmetric original measure.
    pub beta: f64,
}

impl TCommute {
    /// The paper's setting: T = 10, symmetric combination.
    pub fn new(seed: u64) -> Self {
        TCommute {
            t: 10,
            walks: 400,
            seed,
            beta: 0.5,
        }
    }

    /// The customized "TCommute+" of Fig. 10 with direction weight β.
    pub fn customized(seed: u64, beta: f64) -> Self {
        TCommute {
            beta,
            ..Self::new(seed)
        }
    }

    /// Exact truncated hitting times **to** `q`: `h_T(v → q)` for all `v`.
    ///
    /// DP on remaining budget: `g_0 ≡ 0`, `g_t(q) = 0`,
    /// `g_t(v) = 1 + Σ_u M[v][u] · g_{t-1}(u)` — each sweep is one
    /// out-neighbor gather.
    pub fn hitting_to_query(&self, g: &Graph, q: NodeId) -> Vec<f64> {
        let n = g.node_count();
        let mut cur = vec![0.0f64; n];
        for _ in 0..self.t {
            let mut next = vec![0.0f64; n];
            for v in g.nodes() {
                if v == q {
                    continue; // absorbed: 0
                }
                let mut acc = 1.0;
                let mut covered = 0.0;
                for (dst, prob) in g.out_edges(v) {
                    acc += prob * cur[dst.index()];
                    covered += prob;
                }
                // Dangling shortfall: the walk is stuck, so the remaining
                // budget elapses without hitting.
                if covered < 1.0 {
                    acc += (1.0 - covered) * self.remaining_budget(&cur, v);
                }
                next[v.index()] = acc;
            }
            cur = next;
        }
        cur
    }

    // For a stuck walk the truncated hitting time equals the budget already
    // accumulated at this node per sweep; approximating by the node's own
    // current value keeps the DP monotone and bounded by T.
    fn remaining_budget(&self, cur: &[f64], v: NodeId) -> f64 {
        cur[v.index()]
    }

    /// Monte-Carlo truncated hitting times **from** `q`: `h_T(q → v)` for
    /// all `v`, estimated from `walks` truncated trajectories.
    pub fn hitting_from_query(&self, g: &Graph, q: NodeId) -> Vec<f64> {
        let n = g.node_count();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ ((q.0 as u64) << 17));
        let mut total = vec![0.0f64; n];
        for _ in 0..self.walks {
            // First-hit step per node along this trajectory.
            let mut hit_step = vec![usize::MAX; n];
            let mut cur = q;
            hit_step[q.index()] = 0;
            for step in 1..=self.t {
                let edges: Vec<(NodeId, f64)> = g.out_edges(cur).collect();
                if edges.is_empty() {
                    break;
                }
                let r: f64 = rng.gen();
                let mut acc = 0.0;
                let mut chosen = edges[edges.len() - 1].0;
                for (dst, p) in &edges {
                    acc += p;
                    if r < acc {
                        chosen = *dst;
                        break;
                    }
                }
                cur = chosen;
                if hit_step[cur.index()] == usize::MAX {
                    hit_step[cur.index()] = step;
                }
            }
            for v in 0..n {
                let h = hit_step[v];
                total[v] += if h == usize::MAX {
                    self.t as f64
                } else {
                    h as f64
                };
            }
        }
        total.iter().map(|&s| s / self.walks as f64).collect()
    }

    fn compute_single(&self, g: &Graph, q: NodeId) -> ScoreVec {
        let to_q = self.hitting_to_query(g, q);
        let from_q = self.hitting_from_query(g, q);
        ScoreVec::from_vec(
            from_q
                .iter()
                .zip(&to_q)
                .map(|(&hf, &ht)| -((1.0 - self.beta) * hf + self.beta * ht))
                .collect(),
        )
    }
}

impl ProximityMeasure for TCommute {
    fn name(&self) -> String {
        if (self.beta - 0.5).abs() < 1e-12 {
            "TCommute".into()
        } else {
            format!("TCommute+(β={:.2})", self.beta)
        }
    }

    fn compute(&self, g: &Graph, query: &Query) -> Result<ScoreVec, CoreError> {
        per_node_linear(g, query, |g, n| Ok(self.compute_single(g, n)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;

    #[test]
    fn hitting_to_query_basics() {
        let (g, ids) = fig2_toy();
        let tc = TCommute::new(0);
        let h = tc.hitting_to_query(&g, ids.t1);
        // The query hits itself immediately.
        assert_eq!(h[ids.t1.index()], 0.0);
        // Direct neighbors hit quickly; everything is bounded by T.
        for v in g.nodes() {
            assert!(h[v.index()] <= tc.t as f64 + 1e-9);
            assert!(h[v.index()] >= 0.0);
        }
        // A paper adjacent to t1 returns faster than v1 (two hops + leaks).
        assert!(h[ids.p[0].index()] < h[ids.v1.index()]);
    }

    #[test]
    fn specific_venue_returns_faster() {
        // v2/v3's papers all lead back to t1; v1 leaks through p6, p7.
        let (g, ids) = fig2_toy();
        let h = TCommute::new(0).hitting_to_query(&g, ids.t1);
        assert!(h[ids.v2.index()] < h[ids.v1.index()]);
        assert!(h[ids.v3.index()] < h[ids.v1.index()]);
    }

    #[test]
    fn forward_hitting_monte_carlo_reasonable() {
        let (g, ids) = fig2_toy();
        let tc = TCommute {
            walks: 4_000,
            ..TCommute::new(3)
        };
        let h = tc.hitting_from_query(&g, ids.t1);
        // Immediate self-hit.
        assert_eq!(h[ids.t1.index()], 0.0);
        // Direct neighbors are hit in about 1–4 steps on average.
        assert!(h[ids.p[0].index()] < tc.t as f64 * 0.8);
        // The easily-reached v1/v2 beat the single-path v3.
        assert!(h[ids.v1.index()] < h[ids.v3.index()]);
    }

    #[test]
    fn commute_score_ranks_balanced_venue_highest() {
        let (g, ids) = fig2_toy();
        let s = TCommute {
            walks: 4_000,
            ..TCommute::new(7)
        }
        .compute(&g, &Query::single(ids.t1))
        .unwrap();
        // v2 has both directions fast; it should beat v1 and v3.
        assert!(s.score(ids.v2) > s.score(ids.v1));
        assert!(s.score(ids.v2) > s.score(ids.v3));
    }

    #[test]
    fn beta_extremes_change_direction_preference() {
        let (g, ids) = fig2_toy();
        let imp = TCommute::customized(1, 0.0)
            .compute(&g, &Query::single(ids.t1))
            .unwrap();
        let spec = TCommute::customized(1, 1.0)
            .compute(&g, &Query::single(ids.t1))
            .unwrap();
        // Importance-only: v1 (easy to reach) beats v3 (hard to reach).
        assert!(imp.score(ids.v1) > imp.score(ids.v3));
        // Specificity-only: v3 (fast return) beats v1 (leaky return).
        assert!(spec.score(ids.v3) > spec.score(ids.v1));
    }

    #[test]
    fn scores_are_negative_times() {
        let (g, ids) = fig2_toy();
        let s = TCommute::new(2)
            .compute(&g, &Query::single(ids.t1))
            .unwrap();
        for v in g.nodes() {
            assert!(s.score(v) <= 0.0);
            assert!(s.score(v) >= -(2.0 * 10.0));
        }
    }

    #[test]
    fn name_reflects_customization() {
        assert_eq!(ProximityMeasure::name(&TCommute::new(0)), "TCommute");
        assert!(ProximityMeasure::name(&TCommute::customized(0, 0.3)).contains("β=0.30"));
    }
}
