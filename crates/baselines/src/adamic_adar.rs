//! AdamicAdar [Adamic & Adar 2003] — a "closeness" baseline with no finer
//! importance/specificity interpretation (paper Sect. II):
//!
//! ```text
//! AA(q,v) = Σ_{z ∈ Γ(q) ∩ Γ(v)}  1 / log |Γ(z)|
//! ```
//!
//! where `Γ(·)` is the undirected neighbor set. Scores all nodes in
//! `O(Σ_{z∈Γ(q)} |Γ(z)|)` by scattering each shared neighbor's weight.
//! Its poor showing on Task 3 in the paper (NDCG ≈ 0) comes from the
//! bipartite click graph: a phrase and a URL never share a neighbor type,
//! which our implementation faithfully reproduces.

use crate::measure::{per_node_linear, ProximityMeasure};
use rtr_core::{CoreError, Query, ScoreVec};
use rtr_graph::Graph;

/// The AdamicAdar common-neighbor measure.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdamicAdar;

impl AdamicAdar {
    /// Create the measure (parameter-free).
    pub fn new() -> Self {
        AdamicAdar
    }

    fn compute_single(g: &Graph, q: rtr_graph::NodeId) -> ScoreVec {
        let mut scores = ScoreVec::zeros(g.node_count());
        for z in g.undirected_neighbors(q) {
            let degree = g.undirected_neighbors(z).len();
            if degree < 2 {
                // log(1) = 0 would divide by zero; a degree-1 neighbor is
                // only connected to q anyway and witnesses nothing.
                continue;
            }
            let w = 1.0 / (degree as f64).ln();
            for v in g.undirected_neighbors(z) {
                if v != q {
                    *scores.score_mut(v) += w;
                }
            }
        }
        scores
    }
}

impl ProximityMeasure for AdamicAdar {
    fn name(&self) -> String {
        "AdamicAdar".into()
    }

    fn compute(&self, g: &Graph, query: &Query) -> Result<ScoreVec, CoreError> {
        per_node_linear(g, query, |g, n| Ok(Self::compute_single(g, n)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;

    #[test]
    fn shared_neighbor_scores() {
        let (g, ids) = fig2_toy();
        let s = AdamicAdar::new()
            .compute(&g, &Query::single(ids.t1))
            .unwrap();
        // t1's neighbors are p1..p5; venues share those papers with t1:
        // v1 shares p1,p2 (deg 2 each): 2/ln2; v2 shares p3,p4: 2/ln2;
        // v3 shares p5: 1/ln2.
        let expected_v1 = 2.0 / 2.0f64.ln();
        assert!((s.score(ids.v1) - expected_v1).abs() < 1e-12);
        assert!((s.score(ids.v2) - expected_v1).abs() < 1e-12);
        assert!((s.score(ids.v3) - 1.0 / 2.0f64.ln()).abs() < 1e-12);
        // t2 shares no neighbors with t1.
        assert_eq!(s.score(ids.t2), 0.0);
    }

    #[test]
    fn no_score_beyond_two_hops() {
        let (g, ids) = fig2_toy();
        let s = AdamicAdar::new()
            .compute(&g, &Query::single(ids.v3))
            .unwrap();
        // v3's only neighbor is p5 (degree 2): witnesses t1.
        assert!(s.score(ids.t1) > 0.0);
        assert_eq!(s.score(ids.v1), 0.0, "3 hops away");
    }

    #[test]
    fn symmetric_on_undirected_graphs() {
        let (g, ids) = fig2_toy();
        let from_v1 = AdamicAdar::new()
            .compute(&g, &Query::single(ids.v1))
            .unwrap();
        let from_v2 = AdamicAdar::new()
            .compute(&g, &Query::single(ids.v2))
            .unwrap();
        assert!((from_v1.score(ids.v2) - from_v2.score(ids.v1)).abs() < 1e-12);
    }

    #[test]
    fn degree_one_witness_ignored() {
        let mut b = rtr_graph::GraphBuilder::new();
        let ty = b.register_type("n");
        let a = b.add_node(ty);
        let z = b.add_node(ty);
        b.add_undirected_edge(a, z, 1.0);
        let g = b.build();
        let s = AdamicAdar::new().compute(&g, &Query::single(a)).unwrap();
        // z's only neighbor is a; no division by log(1) = 0.
        assert!(s.as_slice().iter().all(|v| v.is_finite()));
    }
}
