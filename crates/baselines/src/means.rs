//! Harmonic and arithmetic mean combinations of F-Rank and T-Rank.
//!
//! The paper compares RoundTripRank+ against these because its own
//! computational model "is actually a geometric mean of F-Rank and T-Rank"
//! (Sect. VI-A2) — so the natural ablation is the same two factors combined
//! by the other two Pythagorean means:
//!
//! * **Harmonic** `2ft/(f+t)` — the precision/recall-style combination of
//!   Agarwal et al. \[12\] / Fang & Chang \[13\];
//! * **Arithmetic** `(f+t)/2` — "simply the expectation of two independent
//!   trials, one for each sense, lacking coherence in their integration".
//!
//! Customized "+" variants (Fig. 10) put weights `1-β, β` on the two
//! sub-measures: weighted harmonic `1/[(1-β)/f + β/t]` and weighted
//! arithmetic `(1-β)f + βt`.

use crate::measure::{per_node_linear, ProximityMeasure};
use rtr_core::prelude::*;
use rtr_core::CoreError;
use rtr_graph::{Graph, NodeId};

/// Harmonic mean of F-Rank and T-Rank (optionally β-weighted).
#[derive(Clone, Copy, Debug)]
pub struct HarmonicMean {
    /// Random-walk parameters.
    pub params: RankParams,
    /// Weight β on the T-Rank side; 0.5 = plain harmonic mean.
    pub beta: f64,
}

/// Arithmetic mean of F-Rank and T-Rank (optionally β-weighted).
#[derive(Clone, Copy, Debug)]
pub struct ArithmeticMean {
    /// Random-walk parameters.
    pub params: RankParams,
    /// Weight β on the T-Rank side; 0.5 = plain arithmetic mean.
    pub beta: f64,
}

impl HarmonicMean {
    /// Plain harmonic mean (β = 0.5).
    pub fn new(params: RankParams) -> Self {
        HarmonicMean { params, beta: 0.5 }
    }

    /// The customized "Harmonic+" of Fig. 10.
    pub fn customized(params: RankParams, beta: f64) -> Self {
        HarmonicMean { params, beta }
    }

    fn combine(&self, f: f64, t: f64) -> f64 {
        if f <= 0.0 || t <= 0.0 {
            return 0.0;
        }
        1.0 / ((1.0 - self.beta) / f + self.beta / t)
    }
}

impl ArithmeticMean {
    /// Plain arithmetic mean (β = 0.5).
    pub fn new(params: RankParams) -> Self {
        ArithmeticMean { params, beta: 0.5 }
    }

    /// The customized "Arithmetic+" of Fig. 10.
    pub fn customized(params: RankParams, beta: f64) -> Self {
        ArithmeticMean { params, beta }
    }

    fn combine(&self, f: f64, t: f64) -> f64 {
        (1.0 - self.beta) * f + self.beta * t
    }
}

fn compute_ft(g: &Graph, n: NodeId, params: RankParams) -> Result<(ScoreVec, ScoreVec), CoreError> {
    let q = Query::single(n);
    let f = FRank::new(params).compute(g, &q)?;
    let t = TRank::new(params).compute(g, &q)?;
    Ok((f, t))
}

impl ProximityMeasure for HarmonicMean {
    fn name(&self) -> String {
        if (self.beta - 0.5).abs() < 1e-12 {
            "Harmonic".into()
        } else {
            format!("Harmonic+(β={:.2})", self.beta)
        }
    }

    fn compute(&self, g: &Graph, query: &Query) -> Result<ScoreVec, CoreError> {
        per_node_linear(g, query, |g, n| {
            let (f, t) = compute_ft(g, n, self.params)?;
            Ok(ScoreVec::from_vec(
                f.as_slice()
                    .iter()
                    .zip(t.as_slice())
                    .map(|(&fv, &tv)| self.combine(fv, tv))
                    .collect(),
            ))
        })
    }
}

impl ProximityMeasure for ArithmeticMean {
    fn name(&self) -> String {
        if (self.beta - 0.5).abs() < 1e-12 {
            "Arithmetic".into()
        } else {
            format!("Arithmetic+(β={:.2})", self.beta)
        }
    }

    fn compute(&self, g: &Graph, query: &Query) -> Result<ScoreVec, CoreError> {
        per_node_linear(g, query, |g, n| {
            let (f, t) = compute_ft(g, n, self.params)?;
            Ok(ScoreVec::from_vec(
                f.as_slice()
                    .iter()
                    .zip(t.as_slice())
                    .map(|(&fv, &tv)| self.combine(fv, tv))
                    .collect(),
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;

    #[test]
    fn pythagorean_mean_inequality() {
        // harmonic ≤ geometric ≤ arithmetic, elementwise.
        let (g, ids) = fig2_toy();
        let p = RankParams::default();
        let q = Query::single(ids.t1);
        let h = HarmonicMean::new(p).compute(&g, &q).unwrap();
        let a = ArithmeticMean::new(p).compute(&g, &q).unwrap();
        let geo = RoundTripRank::new(p).compute(&g, &q).unwrap(); // f·t = geometric²
        for v in g.nodes() {
            let geom = geo.score(v).sqrt();
            assert!(
                h.score(v) <= geom + 1e-12,
                "{v:?}: harmonic {} > geometric {geom}",
                h.score(v)
            );
            assert!(
                geom <= a.score(v) + 1e-12,
                "{v:?}: geometric {geom} > arithmetic {}",
                a.score(v)
            );
        }
    }

    #[test]
    fn harmonic_zero_when_either_factor_zero() {
        let mut b = rtr_graph::GraphBuilder::new();
        let ty = b.register_type("n");
        let q = b.add_node(ty);
        let x = b.add_node(ty);
        b.add_edge(q, x, 1.0);
        b.add_edge(x, x, 1.0); // x cannot return
        let g = b.build();
        let h = HarmonicMean::new(RankParams::default())
            .compute(&g, &Query::single(q))
            .unwrap();
        assert_eq!(h.score(x), 0.0);
        // Arithmetic, by contrast, still credits the reachable direction.
        let a = ArithmeticMean::new(RankParams::default())
            .compute(&g, &Query::single(q))
            .unwrap();
        assert!(a.score(x) > 0.0);
    }

    #[test]
    fn beta_extremes_reduce_to_single_sense() {
        let (g, ids) = fig2_toy();
        let p = RankParams::default();
        let q = Query::single(ids.t1);
        let f = FRank::new(p).compute(&g, &q).unwrap();
        let t = TRank::new(p).compute(&g, &q).unwrap();
        let a0 = ArithmeticMean::customized(p, 0.0).compute(&g, &q).unwrap();
        assert!(a0.linf_distance(&f) < 1e-12);
        let a1 = ArithmeticMean::customized(p, 1.0).compute(&g, &q).unwrap();
        assert!(a1.linf_distance(&t) < 1e-12);
        let h0 = HarmonicMean::customized(p, 0.0).compute(&g, &q).unwrap();
        assert!(h0.rank_equivalent(&f));
    }

    #[test]
    fn balanced_venue_wins_under_harmonic() {
        // The harmonic mean punishes imbalance hardest, so v2 (balanced)
        // must beat both v1 (importance-heavy) and v3 (specificity-heavy).
        let (g, ids) = fig2_toy();
        let h = HarmonicMean::new(RankParams::default())
            .compute(&g, &Query::single(ids.t1))
            .unwrap();
        assert!(h.score(ids.v2) > h.score(ids.v1));
        assert!(h.score(ids.v2) > h.score(ids.v3));
    }

    #[test]
    fn names() {
        let p = RankParams::default();
        assert_eq!(ProximityMeasure::name(&HarmonicMean::new(p)), "Harmonic");
        assert_eq!(
            ProximityMeasure::name(&ArithmeticMean::new(p)),
            "Arithmetic"
        );
        assert!(ProximityMeasure::name(&HarmonicMean::customized(p, 0.2)).contains("β=0.20"));
    }
}
