//! The common interface every proximity measure exposes to the evaluation
//! harness.

use rtr_core::{CoreError, Query, ScoreVec};
use rtr_graph::Graph;

/// A graph-proximity measure: given a query, score every node.
///
/// The evaluation harness (rtr-eval) is generic over this trait, so the
/// paper's Fig. 5 / 9 / 10 tables are produced by iterating a
/// `Vec<Box<dyn ProximityMeasure>>`.
pub trait ProximityMeasure {
    /// Display name (matches the paper's table rows).
    fn name(&self) -> String;

    /// Score all nodes for `query` (higher = closer).
    fn compute(&self, g: &Graph, query: &Query) -> Result<ScoreVec, CoreError>;
}

/// Blanket adapters so the core measures slot into baseline comparisons.
mod core_impls {
    use super::*;
    use rtr_core::prelude::*;

    impl ProximityMeasure for FRank {
        fn name(&self) -> String {
            "F-Rank/PPR".into()
        }
        fn compute(&self, g: &Graph, query: &Query) -> Result<ScoreVec, CoreError> {
            FRank::compute(self, g, query)
        }
    }

    impl ProximityMeasure for TRank {
        fn name(&self) -> String {
            "T-Rank".into()
        }
        fn compute(&self, g: &Graph, query: &Query) -> Result<ScoreVec, CoreError> {
            TRank::compute(self, g, query)
        }
    }

    impl ProximityMeasure for RoundTripRank {
        fn name(&self) -> String {
            "RoundTripRank".into()
        }
        fn compute(&self, g: &Graph, query: &Query) -> Result<ScoreVec, CoreError> {
            RoundTripRank::compute(self, g, query)
        }
    }

    impl ProximityMeasure for RoundTripRankPlus {
        fn name(&self) -> String {
            format!("RoundTripRank+(β={:.2})", self.beta())
        }
        fn compute(&self, g: &Graph, query: &Query) -> Result<ScoreVec, CoreError> {
            RoundTripRankPlus::compute(self, g, query)
        }
    }
}

/// Helper shared by the multi-node-capable baselines: compute per query node
/// and combine linearly by query weight.
pub(crate) fn per_node_linear<F>(
    g: &Graph,
    query: &Query,
    mut single: F,
) -> Result<ScoreVec, CoreError>
where
    F: FnMut(&Graph, rtr_graph::NodeId) -> Result<ScoreVec, CoreError>,
{
    query.validate(g)?;
    if query.len() == 1 {
        return single(g, query.nodes()[0]);
    }
    let mut acc = ScoreVec::zeros(g.node_count());
    for (node, w) in query.iter() {
        acc.accumulate(&single(g, node)?, w);
    }
    Ok(acc)
}

/// Re-exported for tests and the harness.
pub use rtr_core::RankParams as CoreRankParams;

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_core::prelude::*;
    use rtr_graph::toy::fig2_toy;

    #[test]
    fn core_measures_have_paper_names() {
        let p = rtr_core::RankParams::default();
        assert_eq!(ProximityMeasure::name(&FRank::new(p)), "F-Rank/PPR");
        assert_eq!(ProximityMeasure::name(&TRank::new(p)), "T-Rank");
        assert_eq!(
            ProximityMeasure::name(&RoundTripRank::new(p)),
            "RoundTripRank"
        );
        let plus = RoundTripRankPlus::new(p, 0.3).unwrap();
        assert!(ProximityMeasure::name(&plus).contains("0.30"));
    }

    #[test]
    fn trait_objects_are_usable() {
        let (g, ids) = fig2_toy();
        let p = rtr_core::RankParams::default();
        let measures: Vec<Box<dyn ProximityMeasure>> = vec![
            Box::new(FRank::new(p)),
            Box::new(TRank::new(p)),
            Box::new(RoundTripRank::new(p)),
        ];
        for m in &measures {
            let s = m.compute(&g, &Query::single(ids.t1)).unwrap();
            assert_eq!(s.len(), g.node_count());
        }
    }

    #[test]
    fn per_node_linear_matches_manual_blend() {
        let (g, ids) = fig2_toy();
        let p = rtr_core::RankParams::default();
        let single = |g: &Graph, n: rtr_graph::NodeId| FRank::new(p).compute(g, &Query::single(n));
        let q = Query::uniform(&[ids.t1, ids.t2]);
        let combined = per_node_linear(&g, &q, single).unwrap();
        let a = FRank::new(p).compute(&g, &Query::single(ids.t1)).unwrap();
        let b = FRank::new(p).compute(&g, &Query::single(ids.t2)).unwrap();
        let expected = a.linear_blend(&b, 0.5, 0.5);
        assert!(combined.linf_distance(&expected) < 1e-12);
    }
}
