#![deny(missing_docs)]
//! # rtr-baselines — every comparison measure from the paper's evaluation
//!
//! The effectiveness study (paper Sect. VI-A) compares RoundTripRank and
//! RoundTripRank+ against two families of baselines:
//!
//! **Mono-sensed** (Fig. 5): F-Rank/PPR and T-Rank (from `rtr-core`), plus
//! * [`simrank`] — SimRank [Jeh & Widom 2002] with C = 0.85 (exact iterative
//!   for small graphs and a single-source Monte-Carlo estimator for larger
//!   ones);
//! * [`adamic_adar`] — AdamicAdar [Adamic & Adar 2003].
//!
//! **Dual-sensed** (Figs. 9–10):
//! * [`tcommute`] — truncated commute time [Sarkar & Moore 2007] with T = 10;
//! * [`objsqrtinv`] — ObjSqrtInv [Hristidis et al. 2008]: ObjectRank scaled
//!   by the inverse square root of global ObjectRank, d = 0.25;
//! * [`means`] — the harmonic and arithmetic means of F-Rank and T-Rank
//!   (the paper attributes the harmonic combination to the precision/recall
//!   walks of Agarwal et al. / Fang & Chang).
//!
//! Each dual-sensed baseline also has the **customized "+"** variant the
//! paper builds for Fig. 10 ("we customize each of them with a tunable
//! β ∈ \[0,1\], putting weights 1-β and β on their two sub-measures") —
//! the paper stresses these customizations are the reproduction authors'
//! constructions, not features of the original works.
//!
//! All measures implement [`ProximityMeasure`], the interface the evaluation
//! harness ranks through.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adamic_adar;
pub mod means;
pub mod measure;
pub mod objsqrtinv;
pub mod simrank;
pub mod tcommute;

pub use adamic_adar::AdamicAdar;
pub use means::{ArithmeticMean, HarmonicMean};
pub use measure::ProximityMeasure;
pub use objsqrtinv::ObjSqrtInv;
pub use simrank::SimRank;
pub use tcommute::TCommute;

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::adamic_adar::AdamicAdar;
    pub use crate::means::{ArithmeticMean, HarmonicMean};
    pub use crate::measure::ProximityMeasure;
    pub use crate::objsqrtinv::ObjSqrtInv;
    pub use crate::simrank::SimRank;
    pub use crate::tcommute::TCommute;
}
