//! SimRank [Jeh & Widom 2002] — structural-context similarity, used as a
//! mono-sensed "closeness" baseline (paper Fig. 5, C = 0.85 "as recommended,
//! which we find robust").
//!
//! Two computation paths:
//!
//! * [`SimRank::compute_exact_matrix`] — the classic all-pairs iteration
//!   `s(a,b) = C/(|I(a)||I(b)|) Σ_{i,j} s(I_i(a), I_j(b))`, `O(n²·d²)` per
//!   iteration. The paper itself notes SimRank is "very expensive to compute
//!   exactly on the full graphs" and evaluates on subgraphs; we additionally
//!   cap the exact path at tiny graphs and use it to validate the estimator.
//! * Monte-Carlo single-source estimation (the default [`ProximityMeasure`]
//!   path): `s(a,b) = E[C^τ]` where `τ` is the first meeting time of two
//!   coupled reverse random walks [Fogaras & Rácz 2005]. `R` walk pairs of
//!   length `T` give all-node scores in `O(n·R·T)`.

use crate::measure::{per_node_linear, ProximityMeasure};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rtr_core::{CoreError, Query, ScoreVec};
use rtr_graph::{Graph, NodeId};

/// SimRank with decay `C`, Monte-Carlo estimated.
#[derive(Clone, Copy, Debug)]
pub struct SimRank {
    /// Decay constant C (paper uses 0.85).
    pub c: f64,
    /// Number of sampled reverse-walk pairs per node.
    pub walks: usize,
    /// Walk truncation length.
    pub horizon: usize,
    /// RNG seed (the estimator is deterministic given the seed).
    pub seed: u64,
}

impl SimRank {
    /// The paper's setting: C = 0.85.
    pub fn new(seed: u64) -> Self {
        SimRank {
            c: 0.85,
            walks: 150,
            horizon: 8,
            seed,
        }
    }

    /// Exact all-pairs SimRank for validation on tiny graphs.
    ///
    /// Returns the full `n × n` matrix after `iterations` rounds. Reverse
    /// walks step to a uniformly random in-neighbor (the classic unweighted
    /// formulation).
    pub fn compute_exact_matrix(&self, g: &Graph, iterations: usize) -> Vec<Vec<f64>> {
        let n = g.node_count();
        assert!(n <= 2_000, "exact SimRank is for tiny graphs only");
        let mut cur = vec![vec![0.0f64; n]; n];
        for (i, row) in cur.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        for _ in 0..iterations {
            let mut next = vec![vec![0.0f64; n]; n];
            // Symmetric triangular update writes next[a][b] and next[b][a].
            #[allow(clippy::needless_range_loop)]
            for a in 0..n {
                next[a][a] = 1.0;
                for b in (a + 1)..n {
                    let ia = g.in_neighbors(NodeId(a as u32));
                    let ib = g.in_neighbors(NodeId(b as u32));
                    if ia.is_empty() || ib.is_empty() {
                        continue;
                    }
                    let mut acc = 0.0;
                    for &x in ia {
                        for &y in ib {
                            acc += cur[x.index()][y.index()];
                        }
                    }
                    let s = self.c * acc / (ia.len() * ib.len()) as f64;
                    next[a][b] = s;
                    next[b][a] = s;
                }
            }
            cur = next;
        }
        cur
    }

    /// Reverse-walk position table: `walks × (horizon+1)` positions starting
    /// at `start`, stepping to uniform in-neighbors (`None` once stuck).
    fn sample_walks(
        &self,
        g: &Graph,
        start: NodeId,
        rng: &mut ChaCha8Rng,
    ) -> Vec<Vec<Option<NodeId>>> {
        (0..self.walks)
            .map(|_| {
                let mut pos = Some(start);
                let mut track = Vec::with_capacity(self.horizon + 1);
                track.push(pos);
                for _ in 0..self.horizon {
                    pos = pos.and_then(|p| {
                        let ins = g.in_neighbors(p);
                        if ins.is_empty() {
                            None
                        } else {
                            Some(ins[rng.gen_range(0..ins.len())])
                        }
                    });
                    track.push(pos);
                }
                track
            })
            .collect()
    }

    fn compute_single(&self, g: &Graph, q: NodeId) -> ScoreVec {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ (q.0 as u64) << 20);
        let q_walks = self.sample_walks(g, q, &mut rng);
        let mut scores = ScoreVec::zeros(g.node_count());
        // Reverse walks of length `horizon` can only meet if the two nodes
        // are within 2·horizon undirected hops; everything farther scores 0
        // exactly, so restrict the candidate set (large-graph optimization).
        let candidates = rtr_graph::view::khop_neighborhood(g, &[q], 2 * self.horizon);
        for v in candidates {
            if v == q {
                *scores.score_mut(v) = 1.0;
                continue;
            }
            let v_walks = self.sample_walks(g, v, &mut rng);
            let mut acc = 0.0;
            for (qw, vw) in q_walks.iter().zip(&v_walks) {
                // First same-step meeting of the coupled reverse walks.
                for step in 1..=self.horizon {
                    match (qw[step], vw[step]) {
                        (Some(a), Some(b)) if a == b => {
                            acc += self.c.powi(step as i32);
                            break;
                        }
                        (None, _) | (_, None) => break,
                        _ => {}
                    }
                }
            }
            *scores.score_mut(v) = acc / self.walks as f64;
        }
        scores
    }
}

impl ProximityMeasure for SimRank {
    fn name(&self) -> String {
        "SimRank".into()
    }

    fn compute(&self, g: &Graph, query: &Query) -> Result<ScoreVec, CoreError> {
        per_node_linear(g, query, |g, n| Ok(self.compute_single(g, n)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;

    #[test]
    fn exact_matrix_properties() {
        let (g, _) = fig2_toy();
        let sr = SimRank::new(0);
        let m = sr.compute_exact_matrix(&g, 8);
        let n = g.node_count();
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0, "s(a,a) must be 1");
            for j in 0..n {
                assert!((0.0..=1.0 + 1e-12).contains(&row[j]));
                assert!((row[j] - m[j][i]).abs() < 1e-12, "symmetry");
            }
        }
    }

    #[test]
    fn exact_toy_structure() {
        // Papers attached to the same venue+term are more SimRank-similar
        // than papers attached to different venues.
        let (g, ids) = fig2_toy();
        let m = SimRank::new(0).compute_exact_matrix(&g, 10);
        let s_same = m[ids.p[2].index()][ids.p[3].index()]; // p3, p4 share t1 AND v2
        let s_diff = m[ids.p[2].index()][ids.p[4].index()]; // p3, p5 share only t1
        assert!(s_same > s_diff, "{s_same} <= {s_diff}");
    }

    #[test]
    fn monte_carlo_tracks_exact() {
        let (g, ids) = fig2_toy();
        let sr = SimRank {
            walks: 3_000,
            ..SimRank::new(11)
        };
        let exact = sr.compute_exact_matrix(&g, 12);
        let est = sr.compute(&g, &Query::single(ids.t1)).unwrap();
        for v in g.nodes() {
            let want = exact[ids.t1.index()][v.index()];
            let got = est.score(v);
            assert!((want - got).abs() < 0.08, "{v:?}: exact {want} vs MC {got}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (g, ids) = fig2_toy();
        let a = SimRank::new(5).compute(&g, &Query::single(ids.t1)).unwrap();
        let b = SimRank::new(5).compute(&g, &Query::single(ids.t1)).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn self_similarity_is_one() {
        let (g, ids) = fig2_toy();
        let s = SimRank::new(1).compute(&g, &Query::single(ids.v1)).unwrap();
        assert_eq!(s.score(ids.v1), 1.0);
    }

    #[test]
    #[should_panic(expected = "tiny graphs")]
    fn exact_refuses_large_graphs() {
        let mut b = rtr_graph::GraphBuilder::new();
        let ty = b.register_type("n");
        let nodes: Vec<_> = (0..2_001).map(|_| b.add_node(ty)).collect();
        b.add_edge(nodes[0], nodes[1], 1.0);
        SimRank::new(0).compute_exact_matrix(&b.build(), 1);
    }
}
