//! ObjSqrtInv [Hristidis et al. 2008] — the dual-sensed baseline that scales
//! query-specific ObjectRank by the inverse square root of *global*
//! ObjectRank (paper Figs. 9–10, d = 0.25, "like α, the ranking is stable
//! for a wide range of d"):
//!
//! ```text
//! ObjSqrtInv(q,v) = OR(q,v) / √G(v)
//! ```
//!
//! where `OR(q,·)` is ObjectRank (≡ PPR ≡ F-Rank on our weighted graphs) and
//! `G` is global ObjectRank (PageRank with a uniform base set). Dividing by
//! `√G` damps globally popular nodes — Hristidis et al.'s heuristic form of
//! specificity, which the paper contrasts with its own coherent round trip.
//!
//! The customized "ObjSqrtInv+" (Fig. 10) exposes the exponent trade-off:
//! `score_β = OR(q,v)^{2(1-β)} · G(v)^{-β}`, which recovers the original at
//! β = 0.5 and pure ObjectRank at β = 0.

use crate::measure::{per_node_linear, ProximityMeasure};
use rtr_core::prelude::*;
use rtr_core::CoreError;
use rtr_graph::{Graph, NodeId};

/// The ObjSqrtInv measure with optional customization exponent.
#[derive(Clone, Copy, Debug)]
pub struct ObjSqrtInv {
    /// Random-walk parameters (teleport d; the paper sets d = 0.25).
    pub params: RankParams,
    /// Trade-off weight β ∈ \[0,1\]; 0.5 = the original ObjSqrtInv.
    pub beta: f64,
}

impl ObjSqrtInv {
    /// The paper's setting: d = 0.25, original (symmetric) form.
    pub fn new() -> Self {
        ObjSqrtInv {
            params: RankParams::default(),
            beta: 0.5,
        }
    }

    /// The customized "ObjSqrtInv+" of Fig. 10.
    pub fn customized(beta: f64) -> Self {
        ObjSqrtInv {
            params: RankParams::default(),
            beta,
        }
    }

    /// Global ObjectRank: PageRank with a uniform base set (teleport to any
    /// node uniformly), computed by fixed-point iteration.
    pub fn global_objectrank(&self, g: &Graph) -> ScoreVec {
        let n = g.node_count();
        let alpha = self.params.alpha;
        let base = 1.0 / n as f64;
        let mut cur = vec![base; n];
        for _ in 0..self.params.max_iterations {
            let mut next = vec![0.0f64; n];
            for v in g.nodes() {
                let mut acc = 0.0;
                for (src, prob) in g.in_edges(v) {
                    acc += prob * cur[src.index()];
                }
                next[v.index()] = alpha * base + (1.0 - alpha) * acc;
            }
            let change = cur
                .iter()
                .zip(&next)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            cur = next;
            if change < self.params.tolerance {
                break;
            }
        }
        ScoreVec::from_vec(cur)
    }

    fn compute_single(
        &self,
        g: &Graph,
        q: NodeId,
        global: &ScoreVec,
    ) -> Result<ScoreVec, CoreError> {
        let or = FRank::new(self.params).compute(g, &Query::single(q))?;
        let scores = g
            .nodes()
            .map(|v| {
                let o = or.score(v);
                let gl = global.score(v);
                if gl <= 0.0 {
                    0.0
                } else {
                    o.powf(2.0 * (1.0 - self.beta)) * gl.powf(-self.beta)
                }
            })
            .collect();
        Ok(ScoreVec::from_vec(scores))
    }
}

impl Default for ObjSqrtInv {
    fn default() -> Self {
        Self::new()
    }
}

impl ProximityMeasure for ObjSqrtInv {
    fn name(&self) -> String {
        if (self.beta - 0.5).abs() < 1e-12 {
            "ObjSqrtInv".into()
        } else {
            format!("ObjSqrtInv+(β={:.2})", self.beta)
        }
    }

    fn compute(&self, g: &Graph, query: &Query) -> Result<ScoreVec, CoreError> {
        let global = self.global_objectrank(g);
        per_node_linear(g, query, |g, n| self.compute_single(g, n, &global))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::toy::fig2_toy;

    #[test]
    fn global_objectrank_is_a_distribution() {
        let (g, _) = fig2_toy();
        let gor = ObjSqrtInv::new().global_objectrank(&g);
        assert!((gor.total() - 1.0).abs() < 1e-6);
        for v in g.nodes() {
            assert!(gor.score(v) > 0.0);
        }
    }

    #[test]
    fn global_objectrank_favors_hubs() {
        let (g, ids) = fig2_toy();
        let gor = ObjSqrtInv::new().global_objectrank(&g);
        // v1 (degree 4) is globally more popular than v3 (degree 1).
        assert!(gor.score(ids.v1) > gor.score(ids.v3));
        // t1 (degree 5) beats t2 (degree 2).
        assert!(gor.score(ids.t1) > gor.score(ids.t2));
    }

    #[test]
    fn sqrt_inverse_damps_popularity() {
        let (g, ids) = fig2_toy();
        let q = Query::single(ids.t1);
        let plain = FRank::new(RankParams::default()).compute(&g, &q).unwrap();
        let osi = ObjSqrtInv::new().compute(&g, &q).unwrap();
        // Under plain ObjectRank the hub v1 beats v2, but dividing by √G
        // narrows the margin (relative damping of the popular node).
        let plain_ratio = plain.score(ids.v1) / plain.score(ids.v2);
        let osi_ratio = osi.score(ids.v1) / osi.score(ids.v2);
        assert!(
            osi_ratio < plain_ratio,
            "√G damping did not reduce hub advantage: {osi_ratio} vs {plain_ratio}"
        );
    }

    #[test]
    fn beta_zero_is_rank_equivalent_to_objectrank() {
        let (g, ids) = fig2_toy();
        let q = Query::single(ids.t1);
        let osi = ObjSqrtInv::customized(0.0).compute(&g, &q).unwrap();
        let or = FRank::new(RankParams::default()).compute(&g, &q).unwrap();
        // score = OR² which is rank-equivalent to OR.
        assert!(osi.rank_equivalent(&or));
    }

    #[test]
    fn customized_name() {
        assert_eq!(ProximityMeasure::name(&ObjSqrtInv::new()), "ObjSqrtInv");
        assert!(ProximityMeasure::name(&ObjSqrtInv::customized(0.7)).contains("0.70"));
    }

    #[test]
    fn scores_finite_everywhere() {
        let (g, ids) = fig2_toy();
        let s = ObjSqrtInv::new()
            .compute(&g, &Query::single(ids.t1))
            .unwrap();
        assert!(s.as_slice().iter().all(|v| v.is_finite()));
    }
}
