#![deny(missing_docs)]
//! # rtr-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (Sect. VI), plus
//! Criterion micro-benchmarks. The binaries print the same rows/series the
//! paper reports; EXPERIMENTS.md records paper-vs-measured for each.
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Fig. 4 (toy round trips) | `fig04_toy` |
//! | Fig. 5 (mono-sensed NDCG) | `fig05_mono` |
//! | Figs. 1/6/7 (illustrative venues) | `fig06_illustrative` |
//! | Fig. 8 (β sweep) | `fig08_beta` |
//! | Fig. 9 (dual-sensed NDCG) | `fig09_dual` |
//! | Fig. 10 (customized baselines) | `fig10_custom` |
//! | Fig. 11 (efficiency & quality vs ε) | `fig11_efficiency` |
//! | Fig. 12 (snapshots: active set, time) | `fig12_snapshots` |
//! | Fig. 13 (growth rates) | `fig13_growth` |
//!
//! ## Environment knobs
//!
//! * `RTR_SCALE` — `tiny` | `small` (default) | `subgraph` | `full`:
//!   dataset size for the effectiveness binaries.
//! * `RTR_TEST_QUERIES` / `RTR_DEV_QUERIES` — query counts (paper: 1000 +
//!   1000; defaults are smaller so every binary finishes in CI time).
//! * `RTR_SEED` — master seed (default 2013, the paper's year).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod json;
pub mod openloop;
pub mod snapshots;
pub mod summary;

use rtr_datagen::{BibNet, BibNetConfig, QLog, QLogConfig};
use std::time::{Duration, Instant};

/// Dataset scale selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Hundreds of nodes (smoke tests).
    Tiny,
    /// Thousands of nodes (default; CI-friendly).
    Small,
    /// The paper's effectiveness-subgraph scale (tens of thousands).
    Subgraph,
    /// The efficiency-study scale (hundreds of thousands).
    Full,
}

impl Scale {
    /// Read from `RTR_SCALE` (default `small`).
    pub fn from_env() -> Self {
        match std::env::var("RTR_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("subgraph") => Scale::Subgraph,
            Ok("full") => Scale::Full,
            Ok("small") | Err(_) => Scale::Small,
            Ok(other) => panic!("unknown RTR_SCALE '{other}'"),
        }
    }

    /// The BibNet config at this scale.
    pub fn bibnet_config(self) -> BibNetConfig {
        match self {
            Scale::Tiny => BibNetConfig::tiny(),
            Scale::Small => BibNetConfig::small(),
            Scale::Subgraph => BibNetConfig::subgraph_scale(),
            Scale::Full => BibNetConfig::full_scale(),
        }
    }

    /// The QLog config at this scale.
    pub fn qlog_config(self) -> QLogConfig {
        match self {
            Scale::Tiny => QLogConfig::tiny(),
            Scale::Small => QLogConfig::small(),
            Scale::Subgraph => QLogConfig::subgraph_scale(),
            Scale::Full => QLogConfig::full_scale(),
        }
    }
}

/// Master seed (env `RTR_SEED`, default 2013).
pub fn seed() -> u64 {
    env_usize("RTR_SEED", 2013) as u64
}

/// Test query count (env `RTR_TEST_QUERIES`; paper used 1000).
pub fn test_queries(default: usize) -> usize {
    env_usize("RTR_TEST_QUERIES", default)
}

/// Dev query count (env `RTR_DEV_QUERIES`; paper used 1000).
pub fn dev_queries(default: usize) -> usize {
    env_usize("RTR_DEV_QUERIES", default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Build the BibNet dataset at the env-selected scale.
pub fn bibnet() -> BibNet {
    let scale = Scale::from_env();
    eprintln!("[rtr-bench] generating BibNet at {scale:?} scale...");
    let net = BibNet::generate(&scale.bibnet_config(), seed());
    eprintln!(
        "[rtr-bench] BibNet: {} nodes, {} edges",
        net.graph.node_count(),
        net.graph.edge_count()
    );
    net
}

/// Build the QLog dataset at the env-selected scale.
pub fn qlog() -> QLog {
    let scale = Scale::from_env();
    eprintln!("[rtr-bench] generating QLog at {scale:?} scale...");
    let q = QLog::generate(&scale.qlog_config(), seed() ^ 0x51_09);
    eprintln!(
        "[rtr-bench] QLog: {} nodes, {} edges",
        q.graph.node_count(),
        q.graph.edge_count()
    );
    q
}

/// Time a closure, returning `(result, elapsed)`.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Mean and 99% confidence half-width of a sample (the paper reports 99%
/// confidence intervals for query times and active-set sizes, Fig. 12).
pub fn mean_ci99(samples: &[f64]) -> (f64, f64) {
    let n = samples.len().max(1) as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0);
    // z ≈ 2.576 for 99% (normal approximation; the paper's samples are large).
    (mean, 2.576 * (var / n).sqrt())
}

/// The `p`-th percentile (`0 ≤ p ≤ 100`) of a sample by the nearest-rank
/// method on a sorted copy. Used for the latency quantiles the throughput
/// harness reports.
///
/// Total on degenerate inputs — the throughput harness feeds it whatever a
/// run produced: an **empty** sample returns 0 (there is no latency to
/// report), a **single** sample is every percentile of itself, and `p`
/// outside `[0, 100]` is clamped rather than allowed to index out of
/// bounds.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s = [4.0, 1.0, 3.0, 2.0, 5.0];
        assert_eq!(percentile(&s, 50.0), 3.0);
        assert_eq!(percentile(&s, 99.0), 5.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 100.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn percentile_zero_samples() {
        // No latencies (e.g. an all-warmup run): every percentile is 0.
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[], p), 0.0);
        }
    }

    #[test]
    fn percentile_one_sample() {
        // A single sample is its own p50, p99, and extremes.
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[3.25], p), 3.25);
        }
    }

    #[test]
    fn percentile_two_samples() {
        let s = [10.0, 2.0]; // unsorted on purpose
        assert_eq!(percentile(&s, 0.0), 2.0);
        // Nearest-rank: ceil(0.50 * 2) = rank 1 -> the smaller sample.
        assert_eq!(percentile(&s, 50.0), 2.0);
        assert_eq!(percentile(&s, 50.1), 10.0);
        assert_eq!(percentile(&s, 99.0), 10.0);
        assert_eq!(percentile(&s, 100.0), 10.0);
    }

    #[test]
    fn percentile_out_of_range_p_clamps() {
        let s = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&s, -5.0), 1.0);
        assert_eq!(percentile(&s, 250.0), 3.0);
    }

    #[test]
    fn scale_configs_grow() {
        let tiny = Scale::Tiny.bibnet_config();
        let small = Scale::Small.bibnet_config();
        let sub = Scale::Subgraph.bibnet_config();
        assert!(tiny.papers < small.papers);
        assert!(small.papers < sub.papers);
    }

    #[test]
    fn mean_ci_basics() {
        let (m, ci) = mean_ci99(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(m, 1.0);
        assert_eq!(ci, 0.0);
        let (m, ci) = mean_ci99(&[0.0, 2.0]);
        assert_eq!(m, 1.0);
        assert!(ci > 0.0);
    }

    #[test]
    fn timer_measures() {
        let (v, d) = time_it(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
