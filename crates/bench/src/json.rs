//! Minimal JSON plumbing for the machine-readable `BENCH_*.json`
//! artifacts.
//!
//! The offline `serde` shim has no serializer, so the harness emits JSON
//! by hand and reads back only what the perf gate needs: one numeric field
//! by key. That keeps the committed `bench/baseline.json` a plain, human-
//! editable file without pulling a parser dependency into the image.

/// Extract the first numeric value stored under `"key":` in `text`.
///
/// Handles the subset of JSON the bench artifacts use — numbers written as
/// `-?digits[.digits][e±digits]` directly after the key's colon (arbitrary
/// whitespace allowed). Returns `None` when the key is absent or its value
/// is not a number.
pub fn number_field(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let mut search_from = 0usize;
    while let Some(found) = text[search_from..].find(&needle) {
        let after_key = search_from + found + needle.len();
        let rest = text[after_key..].trim_start();
        if let Some(value_text) = rest.strip_prefix(':') {
            let value_text = value_text.trim_start();
            let end = value_text
                .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
                .unwrap_or(value_text.len());
            if let Ok(v) = value_text[..end].parse::<f64>() {
                return Some(v);
            }
            return None;
        }
        // The needle was a string *value*, not a key; keep scanning.
        search_from = after_key;
    }
    None
}

/// Format `v` for JSON output: finite with up to 6 significant decimals,
/// never `NaN`/`inf` (mapped to 0, which JSON cannot represent).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Trim trailing zeros for readability while keeping precision.
        let s = format!("{v:.6}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        if s.is_empty() || s == "-" {
            "0".to_owned()
        } else {
            s.to_owned()
        }
    } else {
        "0".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_numbers() {
        let text = r#"{ "qps": 1234.5, "nested": { "p99_ms": 0.75 }, "n": 64 }"#;
        assert_eq!(number_field(text, "qps"), Some(1234.5));
        assert_eq!(number_field(text, "p99_ms"), Some(0.75));
        assert_eq!(number_field(text, "n"), Some(64.0));
        assert_eq!(number_field(text, "missing"), None);
    }

    #[test]
    fn scientific_and_negative() {
        let text = r#"{"a": -3.5e-2, "b":1e3}"#;
        assert!((number_field(text, "a").unwrap() + 0.035).abs() < 1e-12);
        assert_eq!(number_field(text, "b"), Some(1000.0));
    }

    #[test]
    fn key_as_value_is_skipped() {
        // "qps" appears first as a string value; the real key follows.
        let text = r#"{"metric": "qps", "qps": 9.0}"#;
        assert_eq!(number_field(text, "qps"), Some(9.0));
    }

    #[test]
    fn non_number_value_is_none() {
        let text = r#"{"qps": "fast"}"#;
        assert_eq!(number_field(text, "qps"), None);
    }

    #[test]
    fn formats_numbers() {
        assert_eq!(number(1234.5), "1234.5");
        assert_eq!(number(0.75), "0.75");
        assert_eq!(number(64.0), "64");
        assert_eq!(number(0.0), "0");
        assert_eq!(number(f64::NAN), "0");
    }
}
