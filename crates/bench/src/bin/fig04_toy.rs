//! Reproduces paper Fig. 4: every round trip on the Fig. 2 toy graph with
//! constant walk lengths L = L' = 2, grouped by target, plus the resulting
//! RoundTripRank values — and cross-checks them against the decomposed
//! computation (Prop. 2).

use rtr_core::enumerate::{round_trips, rtr_by_enumeration, rtr_constant};
use rtr_graph::toy::fig2_toy;

fn main() {
    let (g, ids) = fig2_toy();
    println!("=== Fig. 4: round trips from t1 with constant L = L' = 2 ===\n");

    let trips = round_trips(&g, ids.t1, 2, 2);
    let mut by_target: std::collections::BTreeMap<u32, Vec<&_>> = Default::default();
    for t in &trips {
        by_target.entry(t.target.0).or_default().push(t);
    }

    println!(
        "{:<18} {:>8} {:>14} {:>16}",
        "target", "#trips", "p(each)", "sum ∝ r(t1,v)"
    );
    for (target, trips) in &by_target {
        let label = g.label(rtr_graph::NodeId(*target));
        let total: f64 = trips.iter().map(|t| t.probability).sum();
        println!(
            "{:<18} {:>8} {:>14.4} {:>16.4}",
            label,
            trips.len(),
            trips[0].probability,
            total
        );
    }

    // Show a few explicit trips, as the paper's table does.
    println!("\nSample round trips targeting v1:");
    for t in trips.iter().filter(|t| t.target == ids.v1).take(4) {
        let path: Vec<String> = t.nodes.iter().map(|n| g.label(*n).to_owned()).collect();
        println!("  {}   p = {:.4}", path.join(" -> "), t.probability);
    }

    // Cross-check: enumeration == decomposed product (Prop. 2).
    let by_enum = rtr_by_enumeration(&g, ids.t1, 2, 2);
    let by_product = rtr_constant(&g, ids.t1, 2, 2);
    let gap = by_enum.linf_distance(&by_product);
    println!("\nProp. 2 check: |enumeration - f·t|_∞ = {gap:.2e} (expect ~0)");
    assert!(gap < 1e-12);

    // The paper's qualitative conclusion.
    println!("\nPaper's expected ordering: r(v2) > r(v1) = r(v3), t1 largest.");
    println!(
        "Measured: r(t1) = {:.4}, r(v2) = {:.4}, r(v1) = {:.4}, r(v3) = {:.4}",
        by_enum.score(ids.t1),
        by_enum.score(ids.v2),
        by_enum.score(ids.v1),
        by_enum.score(ids.v3),
    );
}
