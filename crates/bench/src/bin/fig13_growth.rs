//! Reproduces paper Fig. 13: rate of growth of the snapshot size, active-set
//! size and query time, each normalized to its value on the first snapshot —
//! demonstrating that the active set (and hence query time) grows far slower
//! than the graph, as the `O(D̄ + D̄²)` analysis of Sect. V-B1 predicts.

use rtr_bench::snapshots::{measure_prepared, measure_snapshots};
use rtr_bench::{bibnet, qlog, test_queries};
use rtr_graph::prelude::GrowthSchedule;
use rtr_graph::stats::fit_densification;

fn print_growth(name: &str, rows: &[rtr_bench::snapshots::SnapshotRow]) {
    let first = &rows[0];
    println!("\n--- {name}: growth normalized to snapshot 1 ---");
    println!(
        "{:>4} {:>12} {:>12} {:>12}",
        "snap", "snapshot", "active set", "query time"
    );
    for r in rows {
        println!(
            "{:>4} {:>11.1}x {:>11.1}x {:>11.1}x",
            r.index,
            r.snapshot_kb / first.snapshot_kb,
            r.active_kb / first.active_kb,
            r.query_ms / first.query_ms
        );
    }
    let last = rows.last().expect("rows");
    println!(
        "overall: snapshot ×{:.1}, active set ×{:.1}, query time ×{:.1} \
         (paper BibNet: ×7.4 / ×1.9 / similar-to-active-set)",
        last.snapshot_kb / first.snapshot_kb,
        last.active_kb / first.active_kb,
        last.query_ms / first.query_ms
    );
    // Densification-law fit, the paper's analytical backbone (Sect. V-B1).
    let pts: Vec<(usize, f64)> = rows
        .iter()
        .map(|r| (r.nodes, r.snapshot_kb / r.nodes as f64))
        .collect();
    let (c, a) = fit_densification(&pts);
    println!("densification fit D̄ ≈ c·|V|^(a-1): c = {c:.3}, a = {a:.3} (paper: 1 < a < 2)");
}

fn main() {
    let n_queries = test_queries(10);
    println!("=== Fig. 13: rate of growth (snapshot vs active set vs query time) ===");
    println!("(queries per snapshot: {n_queries}; paper used 1000)");

    let net = bibnet();
    let fractions = GrowthSchedule::paper_default().fractions;
    let snaps: Vec<_> = net
        .growth_snapshots(&fractions)
        .into_iter()
        .map(|s| s.graph)
        .collect();
    print_growth("BibNet", &measure_prepared(&snaps, n_queries));

    let qlg = qlog();
    print_growth("QLog", &measure_snapshots(&qlg.graph, n_queries));
}
