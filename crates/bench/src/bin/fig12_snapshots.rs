//! Reproduces paper Fig. 12: active-set size and query time of distributed
//! 2SBound on five cumulative snapshots of each growing graph, with the
//! i-th snapshot served by i graph processors (ε = 0.01, K = 10).

use rtr_bench::snapshots::{measure_prepared, measure_snapshots, print_snapshot_table};
use rtr_bench::{bibnet, qlog, test_queries};
use rtr_graph::prelude::GrowthSchedule;

fn main() {
    let n_queries = test_queries(10);
    println!("=== Fig. 12: active set & query time on growing snapshots ===");
    println!("(queries per snapshot: {n_queries}; paper used 1000; ε = 0.01, K = 10)");

    let net = bibnet();
    // BibNet snapshots keep all entities + a growing paper prefix.
    let fractions = GrowthSchedule::paper_default().fractions;
    let snaps: Vec<_> = net
        .growth_snapshots(&fractions)
        .into_iter()
        .map(|s| s.graph)
        .collect();
    let rows = measure_prepared(&snaps, n_queries);
    print_snapshot_table("BibNet", &rows);
    let last = rows.last().expect("snapshots");
    println!(
        "BibNet largest snapshot: active set = {:.2}% of snapshot (paper: ~0.3%)",
        last.active_kb / last.snapshot_kb * 100.0
    );

    let qlg = qlog();
    let rows = measure_snapshots(&qlg.graph, n_queries);
    print_snapshot_table("QLog", &rows);
    let last = rows.last().expect("snapshots");
    println!(
        "QLog largest snapshot: active set = {:.2}% of snapshot \
         (paper: far smaller than BibNet's — lower average degree)",
        last.active_kb / last.snapshot_kb * 100.0
    );
}
