//! Reproduces the illustrative rankings of paper Figs. 1, 6 and 7: the top-5
//! venues for a multi-term topic query under F-Rank, T-Rank and
//! RoundTripRank side by side.
//!
//! The paper's queries are "spatio temporal data" and "semantic web"; on the
//! synthetic BibNet the analogue is a bundle of same-topic term nodes. The
//! expected *shape* (paper Sect. VI-A1): F-Rank surfaces broad flagship
//! venues, T-Rank surfaces niche venues of the queried topic, and
//! RoundTripRank mixes both with balanced venues in between.

use rtr_bench::bibnet;
use rtr_core::prelude::*;

fn main() {
    let net = bibnet();
    let g = &net.graph;
    let p = RankParams::default();
    let venue_ty = net.venue_type();

    for topic in [0usize, 1] {
        // A 3-term query from one topic, mirroring "spatio temporal data".
        let terms = net.topic_terms(topic);
        let query_terms: Vec<_> = terms.iter().take(3).copied().collect();
        let query = Query::uniform(&query_terms);
        let term_labels: Vec<&str> = query_terms.iter().map(|&t| g.label(t)).collect();
        println!("\n=== Query: topic-{topic} terms {term_labels:?} ===");

        let f = FRank::new(p).compute(g, &query).expect("F-Rank");
        let t = TRank::new(p).compute(g, &query).expect("T-Rank");
        let r = RoundTripRank::new(p).compute(g, &query).expect("RTR");

        let top = |s: &ScoreVec| -> Vec<String> {
            s.filtered_ranking(g, venue_ty, query.nodes())
                .into_iter()
                .take(5)
                .map(|v| g.label(v).to_owned())
                .collect()
        };
        let (ft, tt, rt) = (top(&f), top(&t), top(&r));
        println!(
            "{:<26} {:<26} {:<26}",
            "(a) F-Rank/PPR", "(b) T-Rank", "(c) RoundTripRank"
        );
        for i in 0..5 {
            println!(
                "{:<26} {:<26} {:<26}",
                ft.get(i).map(String::as_str).unwrap_or("-"),
                tt.get(i).map(String::as_str).unwrap_or("-"),
                rt.get(i).map(String::as_str).unwrap_or("-"),
            );
        }

        // Quantify the paper's qualitative claim.
        let flagship_frac = |labels: &[String]| {
            labels.iter().filter(|l| l.contains("flagship")).count() as f64
                / labels.len().max(1) as f64
        };
        println!(
            "flagship share: F-Rank {:.0}%  T-Rank {:.0}%  RTR {:.0}%  \
             (expect F high, T low, RTR in between)",
            flagship_frac(&ft) * 100.0,
            flagship_frac(&tt) * 100.0,
            flagship_frac(&rt) * 100.0
        );
    }
}
