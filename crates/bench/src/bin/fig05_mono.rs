//! Reproduces paper Fig. 5: NDCG@{5,10,20} of RoundTripRank against the
//! mono-sensed baselines (F-Rank/PPR, T-Rank, SimRank, AdamicAdar) on all
//! four ranking tasks, with the paper's two-tail paired t-test on the
//! RTR-vs-runner-up comparison.

use rtr_baselines::prelude::*;
use rtr_bench::{bibnet, dev_queries, qlog, seed, test_queries};
use rtr_core::prelude::*;
use rtr_eval::tasks::{task1_author, task2_venue, task3_relevant_url, task4_equivalent};
use rtr_eval::{evaluate_all, format_table, TaskInstance};

fn measures() -> Vec<Box<dyn ProximityMeasure>> {
    let p = RankParams::default(); // α = 0.25 as in the paper
    vec![
        Box::new(RoundTripRank::new(p)),
        Box::new(FRank::new(p)),
        Box::new(TRank::new(p)),
        Box::new(SimRank {
            walks: 60,
            horizon: 5,
            ..SimRank::new(seed())
        }),
        Box::new(AdamicAdar::new()),
    ]
}

fn run_task(task: &TaskInstance, ks: &[usize], averages: &mut Vec<Vec<f64>>) {
    let evals = evaluate_all(&measures(), task, ks);
    println!("{}", format_table(task.kind.name(), &evals, ks));
    // Paper: "it improves NDCG@5 over the runner-up (F-Rank/PPR) ... with
    // statistical significance (p < 0.01)".
    let rtr = &evals[0];
    let runner_up = evals[1..]
        .iter()
        .max_by(|a, b| a.mean_ndcg(5).partial_cmp(&b.mean_ndcg(5)).unwrap())
        .expect("baselines present");
    match rtr.ttest_against(runner_up, 5) {
        Some(t) => println!(
            "  t-test RTR vs {} @5: Δmean = {:+.4}, t = {:.2}, p = {:.4}\n",
            runner_up.name, t.mean_diff, t.t, t.p
        ),
        None => println!("  t-test degenerate (identical per-query scores)\n"),
    }
    for (i, e) in evals.iter().enumerate() {
        if averages.len() <= i {
            averages.push(vec![0.0; ks.len()]);
        }
        for (j, &k) in ks.iter().enumerate() {
            averages[i][j] += e.mean_ndcg(k);
        }
    }
}

fn main() {
    let ks = [5usize, 10, 20];
    let n_test = test_queries(150);
    let n_dev = dev_queries(0);
    println!("=== Fig. 5: RoundTripRank vs mono-sensed baselines ===");
    println!("(test queries per task: {n_test}; paper used 1000)\n");

    let net = bibnet();
    let qlg = qlog();
    let mut averages: Vec<Vec<f64>> = Vec::new();

    run_task(
        &task1_author(&net, n_test, n_dev, seed() + 1).test,
        &ks,
        &mut averages,
    );
    run_task(
        &task2_venue(&net, n_test, n_dev, seed() + 2).test,
        &ks,
        &mut averages,
    );
    run_task(
        &task3_relevant_url(&qlg, n_test, n_dev, seed() + 3).test,
        &ks,
        &mut averages,
    );
    run_task(
        &task4_equivalent(&qlg, n_test, n_dev, seed() + 4).test,
        &ks,
        &mut averages,
    );

    println!("Average over the four tasks:");
    let names = [
        "RoundTripRank",
        "F-Rank/PPR",
        "T-Rank",
        "SimRank",
        "AdamicAdar",
    ];
    println!("{:<28}  NDCG@5    NDCG@10   NDCG@20", "measure");
    for (i, name) in names.iter().enumerate() {
        print!("{name:<28}");
        for avg in averages[i].iter().take(ks.len()) {
            print!("  {:.4}  ", avg / 4.0);
        }
        println!();
    }
    let rtr5 = averages[0][0];
    let best_base5 = averages[1..]
        .iter()
        .map(|a| a[0])
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nRTR improves average NDCG@5 over the best mono-sensed baseline by {:+.1}% \
         (paper reports +10% over F-Rank/PPR).",
        (rtr5 / best_base5 - 1.0) * 100.0
    );
}
