//! Reproduces paper Fig. 10: NDCG@5 of RoundTripRank+ against the
//! **customized** dual-sensed baselines — each given the same benefit of a
//! tunable β ∈ \[0,1\] over its two sub-measures, tuned on the same
//! development queries ("we stress that the customizations are implemented
//! by us, and existing works are unaware of such a need").

use rtr_baselines::prelude::*;
use rtr_bench::{bibnet, dev_queries, qlog, seed, test_queries};
use rtr_core::prelude::*;
use rtr_eval::tasks::{task1_author, task2_venue, task3_relevant_url, task4_equivalent};
use rtr_eval::{beta_grid, evaluate_measure, tune_beta, TaskSplit};

struct Row {
    name: &'static str,
    per_task: Vec<f64>,
}

fn run_task(split: &TaskSplit, rows: &mut [Row]) {
    let params = RankParams::default();
    let betas = beta_grid();
    let k = 5;

    type Factory<'a> = Box<dyn Fn(f64) -> Box<dyn ProximityMeasure> + 'a>;
    let families: Vec<(usize, Factory<'_>)> = vec![
        (
            0,
            Box::new(move |b| {
                Box::new(RoundTripRankPlus::new(params, b).expect("valid β"))
                    as Box<dyn ProximityMeasure>
            }),
        ),
        (
            1,
            Box::new(move |b| {
                Box::new(TCommute {
                    walks: 300,
                    ..TCommute::customized(seed(), b)
                }) as Box<dyn ProximityMeasure>
            }),
        ),
        (
            2,
            Box::new(move |b| Box::new(ObjSqrtInv::customized(b)) as Box<dyn ProximityMeasure>),
        ),
        (
            3,
            Box::new(move |b| {
                Box::new(HarmonicMean::customized(params, b)) as Box<dyn ProximityMeasure>
            }),
        ),
        (
            4,
            Box::new(move |b| {
                Box::new(ArithmeticMean::customized(params, b)) as Box<dyn ProximityMeasure>
            }),
        ),
    ];

    println!("{}:", split.test.kind.name());
    for (row, factory) in families {
        let (beta_star, _) = tune_beta(&factory, &split.dev, &betas, k);
        let eval = evaluate_measure(factory(beta_star).as_ref(), &split.test, &[k]);
        let score = eval.mean_ndcg(k);
        println!(
            "  {:<14} β* = {beta_star:.1}  NDCG@5 = {score:.4}",
            rows[row].name
        );
        rows[row].per_task.push(score);
    }
    println!();
}

fn main() {
    let n_test = test_queries(150);
    let n_dev = dev_queries(75);
    println!("=== Fig. 10: RTR+ vs customized dual-sensed baselines ===");
    println!("(test {n_test} / dev {n_dev} queries per task; paper used 1000 + 1000)\n");

    let mut rows = vec![
        Row {
            name: "RoundTripRank+",
            per_task: vec![],
        },
        Row {
            name: "TCommute+",
            per_task: vec![],
        },
        Row {
            name: "ObjSqrtInv+",
            per_task: vec![],
        },
        Row {
            name: "Harmonic+",
            per_task: vec![],
        },
        Row {
            name: "Arithmetic+",
            per_task: vec![],
        },
    ];

    let net = bibnet();
    let qlg = qlog();
    run_task(&task1_author(&net, n_test, n_dev, seed() + 1), &mut rows);
    run_task(&task2_venue(&net, n_test, n_dev, seed() + 2), &mut rows);
    run_task(
        &task3_relevant_url(&qlg, n_test, n_dev, seed() + 3),
        &mut rows,
    );
    run_task(
        &task4_equivalent(&qlg, n_test, n_dev, seed() + 4),
        &mut rows,
    );

    println!("Summary (NDCG@5 per task + average):");
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "measure", "Task 1", "Task 2", "Task 3", "Task 4", "Average"
    );
    for row in &rows {
        let avg = row.per_task.iter().sum::<f64>() / row.per_task.len().max(1) as f64;
        print!("{:<16}", row.name);
        for s in &row.per_task {
            print!(" {s:>8.4}");
        }
        println!(" {avg:>9.4}");
    }
    println!(
        "\nPaper's headline: RTR+ still best on every task; beats customized \
         runner-up (TCommute+) by >4% on average."
    );
}
