//! Serving-throughput harness for the concurrent query engine (`rtr-serve`).
//!
//! Replays a deterministic QLog query workload through a [`ServeEngine`]
//! worker pool at each configured worker count and reports QPS and latency
//! quantiles, both human-readable and as machine-readable JSON
//! (`BENCH_throughput.json` by default) for the CI perf gate and the
//! cross-PR trajectory.
//!
//! ```text
//! throughput [--workers 1,2,4,8] [--queries N] [--k K] [--epsilon E]
//!            [--skew S] [--mixed] [--cache CAPACITY] [--json PATH]
//!            [--backend local|distributed] [--gps N]
//!            [--obs-gate] [--check bench/baseline.json]
//! ```
//!
//! Without `--check`, the workload follows `RTR_SCALE` / `RTR_SEED` like
//! every other bench binary. With `--check PATH`, the binary ignores the
//! environment and runs the **canonical gate workload** (small QLog, seed
//! 2013, 1000 queries, cache off), then fails — exit code 1 — if the
//! measured best QPS falls more than 30% below the committed baseline's
//! `qps` field, so the gate runs identically locally and in CI. Combined
//! with `--backend distributed`, the same canonical workload runs through
//! the AP/GP backend and the gate additionally fails if mean bytes/query
//! regresses past the baseline's `mean_bytes_per_query` or if QPS falls
//! off from the single-worker pass to the widest one (the multi-AP
//! throughput cliff).
//!
//! With `--skew S`, the workload switches to a **Zipf-repeat stream**: a
//! hot pool of query nodes sampled with exponent `S` (real logs are
//! head-heavy — the hot queries repeat constantly). In this mode every
//! worker count is measured twice, cache **off** then cache **on**, the
//! two result streams are asserted bit-identical, and the JSON gains
//! cached QPS, hit rate, and speedup columns.
//!
//! With `--mixed`, the workload replays a **seeded heterogeneous request
//! mix** through one pool: F-Rank, T-Rank, RTR, and RTR+ (two β values),
//! single- and multi-node queries, two k values — the traffic shape the
//! per-request `QueryRequest` API exists for. Every worker count is
//! measured cache-off then cache-on, both asserted bit-identical to the
//! serial reference, and the JSON gains a `mixed_runs` section.
//!
//! With `--backend distributed` (plus `--gps N`, default 4), the uniform
//! workload is served by the **AP/GP execution backend**: the graph is
//! striped across N graph-processor threads and every worker acts as an
//! active processor fetching node blocks on demand. The result stream is
//! asserted bit-identical to the serial local reference (the backends
//! mirror each other exactly), and the JSON gains a `distributed` section
//! with the wire-cost observables of the paper's Fig. 12: mean payload
//! bytes per query, mean fetch rounds, and active-set size percentiles.
//! In this mode the artifact defaults to `BENCH_throughput_dist.json` so
//! the local trajectory artifact is never clobbered by a distributed run.
//!
//! With `--open-loop`, the harness switches from closed-loop batch replay
//! to **open-loop (Poisson) load generation**: a seeded arrival schedule
//! of a fixed *offered* rate is replayed through [`ServeEngine::submit`]
//! tickets, independent of how fast the pool drains — so queueing delay is
//! measured honestly past saturation (no coordinated omission). The sweep
//! over `--rates R1,R2,...` produces a latency-vs-offered-load curve per
//! scheduler ([`SchedulerMode::WorkStealing`] and the legacy
//! [`SchedulerMode::SharedQueue`], A/B on identical schedules) and the
//! headline **max-sustainable-QPS-at-SLO**: the highest offered rate whose
//! p99 total latency stays under `--slo-ms`. The artifact defaults to
//! `BENCH_throughput_openloop.json`; `--check bench/baseline_openloop.json`
//! gates on that headline the same way the closed-loop gate does on QPS.
//! See `docs/BENCHMARKS.md` for the methodology and the JSON schema.
//!
//! With `--wire`, the same open-loop (Poisson) machinery drives the
//! serving stack **over loopback TCP sockets** through `rtr-net`: a
//! `NetServer` fronts the engine, and `--connections` (default 4) split
//! client connections replay the identical seeded arrival schedule —
//! each connection pacing sends on one thread while another drains
//! responses, so the offered rate never waits on a round trip. Reported
//! latency is wall-clock from *scheduled arrival* to *response decoded
//! back on the client*, so framing, syscalls, admission, and the
//! per-connection write queue are all inside the measurement; the
//! server-side queue-wait/compute split rides along in each response's
//! provenance for comparison. The artifact defaults to `BENCH_net.json`
//! with the same max-sustainable-QPS-at-SLO headline as `--open-loop`;
//! any wire-level rejection disqualifies its rate from the SLO.
//!
//! With `--obs-gate`, the harness runs the observability-overhead A/B
//! instead: the canonical workload with metrics + tracing disabled vs
//! enabled in order-alternating paired passes, failing if the minimum
//! paired overhead exceeds 5% QPS. Every artifact also carries a trailing
//! `metrics` section — the engine's full metrics snapshot from one extra
//! observability-enabled replay of the same workload — so the committed
//! bench JSON shows what a Prometheus scrape would see.
//!
//! All modes report latency **split into queue-wait and compute**
//! percentiles alongside the end-to-end numbers: under load, queue-wait
//! growing while compute stays flat is the saturation signature. The
//! quantiles come from the same `rtr-obs` log-linear histogram the
//! serving layer exports (`rtr_bench::summary::Summary`), so a bench
//! table and a scraped histogram agree on their estimator.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rtr_bench::json::{number, number_field};
use rtr_bench::openloop::poisson_arrivals;
use rtr_bench::summary::Summary;
use rtr_bench::{qlog, seed, Scale};
use rtr_core::{Measure, RankParams};
use rtr_datagen::{QLog, QLogConfig, Zipf};
use rtr_graph::{Graph, NodeId};
use rtr_net::{NetClient, NetServer, NetServerConfig};
use rtr_serve::{
    run_serial_requests, Backend, BackendKind, QueryOutput, QueryRequest, QueryResponse,
    SchedulerMode, ServeConfig, ServeEngine,
};
use rtr_topk::TopKConfig;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Allowed QPS regression against the committed baseline before the gate
/// fails (the ISSUE's ">30% drop" contract).
const MAX_QPS_DROP: f64 = 0.30;

/// Allowed growth in distributed mean bytes/query against the committed
/// baseline. The canonical workload is fully deterministic (single-worker
/// aggregate), so any real increase means the block cache or the prefetch
/// stopped doing its job; the slack only absorbs future intentional
/// protocol tweaks small enough not to matter.
const MAX_BYTES_GROWTH: f64 = 0.25;

/// Measurement-noise allowance for the distributed scaling clause: QPS at
/// the widest worker count must stay within this fraction of the
/// single-worker QPS (anything steeper is the multi-AP throughput cliff
/// this gate exists to catch, not scheduler jitter).
const MAX_SCALING_NOISE: f64 = 0.15;

/// Allowed QPS cost of enabling observability (metrics + tracing) in the
/// `--obs-gate` A/B: the *minimum paired overhead* across passes must
/// stay within this fraction (see the gate loop for why the minimum is
/// the noise-robust statistic).
const MAX_OBS_OVERHEAD: f64 = 0.05;

/// Passes per side of the `--obs-gate` A/B. Each pass runs both sides
/// back to back and *which side goes first alternates per pass* — on a
/// throttled CI container throughput decays within a process, so a
/// fixed order would systematically bill the decay to whichever side
/// always ran second. Each side reports its best pass, so a one-off
/// scheduling hiccup on either side cannot decide the gate; keep this
/// even so both orders appear equally often.
const OBS_GATE_PASSES: usize = 4;

/// Worker count for the `--obs-gate` A/B: two workers exercise the
/// cross-thread paths (shard contention, steal counters) without
/// oversubscribing the 2-core CI machine class into pure noise.
const OBS_GATE_WORKERS: usize = 2;

/// Size of the hot query pool the `--skew` workload draws from: the head
/// of the shuffled phrase pool. Production logs concentrate traffic on a
/// small popular set; a bounded pool models that while keeping the tail
/// (high Zipf ranks) genuinely cold.
const SKEW_HOT_POOL: usize = 256;

/// Default cache capacity when a cached run is requested without an
/// explicit `--cache` (entries; a cached top-10 ranking is a few hundred
/// bytes).
const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Default offered-rate sweep for `--open-loop` (QPS). Spans well below to
/// well past a small machine's cold capacity so the latency-vs-load curve
/// shows both the flat region and the saturation knee.
const DEFAULT_OPEN_RATES: &[f64] = &[500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16000.0];

/// Default p99 SLO for the max-sustainable-QPS headline (milliseconds).
/// Far above the unloaded p99 (~2-4 ms on a small shared box) and far
/// below where queueing sends it once offered load crosses capacity
/// (tens to hundreds of ms), so the knee — not measurement noise — decides.
const DEFAULT_SLO_MS: f64 = 10.0;

/// Repeats per (scheduler, rate) cell; the reported row is the repeat with
/// the **median** p99. One open-loop pass lasts half a second to a few
/// seconds, which on a shared machine is short enough for one scheduling
/// hiccup to own the tail — the median of three keeps a single noisy pass
/// from moving the sustainable-QPS knee in either direction.
const OPEN_LOOP_REPEATS: usize = 3;

/// Zipf exponent of the open-loop query stream: head-heavy repeat traffic
/// (the shape real logs have), so the result cache and the submit-side
/// fast path both participate in the measurement.
const OPEN_LOOP_SKEW: f64 = 1.0;

/// Workers for the open-loop sweep when `--workers` is left at its
/// default: the sweep measures one pool shape (scheduler A/B is the
/// variable), so a single sensible count beats replaying the whole matrix.
/// One worker plus the load-generator thread (which under work stealing
/// also serves the fast path) keeps the bench honest on the 2-core CI
/// class of machine — more threads than cores turns the generator's
/// scheduling jitter into phantom latency for both schedulers.
const OPEN_LOOP_WORKERS: usize = 1;

/// Cap on the serial bit-identity prefix in open-loop mode: long sweeps
/// re-verify the same stream head instead of paying a serial replay of the
/// full schedule per rate.
const OPEN_LOOP_VERIFY_PREFIX: usize = 1500;

/// Client connections for the `--wire` study when `--connections` is left
/// unset: enough to keep per-connection FIFO delivery from serializing the
/// whole stream behind one response, few enough that the thread fan-out
/// (two client threads plus two server threads per connection) doesn't
/// crowd the workers off a 2-core CI box.
const DEFAULT_WIRE_CONNECTIONS: usize = 2;

/// Default p99 SLO for the wire study (milliseconds). Looser than the
/// in-process open-loop SLO on purpose: client-observed wire latency
/// includes both sockets' scheduler wakeups, and on a small shared box
/// the cross-thread handoffs put the *unloaded* p99 in the tens of
/// milliseconds. The knee past saturation is still an order of magnitude
/// above this.
const DEFAULT_WIRE_SLO_MS: f64 = 50.0;

/// Per-connection write-queue depth for the wire bench server: deep enough
/// that a Poisson burst below capacity is buffered, never rejected — the
/// sweep measures latency under offered load, and backpressure rejects are
/// *reported* (and disqualify the rate from the SLO) rather than silently
/// shaping the load.
const WIRE_QUEUE_DEPTH: usize = 4096;

/// Reserved control-lane depth for the wire bench server.
const WIRE_CONTROL_DEPTH: usize = 64;

struct Args {
    workers: Vec<usize>,
    queries: Option<usize>,
    k: usize,
    epsilon: f64,
    out: String,
    check: Option<String>,
    skew: Option<f64>,
    mixed: bool,
    cache: usize,
    /// Execution backend for the uniform workload (`--backend`).
    distributed: bool,
    /// Graph processors for the distributed backend (`--gps`).
    gps: usize,
    /// Open-loop (Poisson offered-load) mode (`--open-loop`).
    open_loop: bool,
    /// Offered-rate sweep for open-loop mode (`--rates`).
    rates: Vec<f64>,
    /// p99 SLO in ms for the max-sustainable-QPS headline (`--slo-ms`);
    /// `None` takes the mode's default ([`DEFAULT_SLO_MS`] in-process,
    /// [`DEFAULT_WIRE_SLO_MS`] over the wire).
    slo_ms: Option<f64>,
    /// Observability-overhead A/B gate (`--obs-gate`).
    obs_gate: bool,
    /// Wire-level open-loop mode over loopback sockets (`--wire`).
    wire: bool,
    /// Client connections for the wire study (`--connections`).
    connections: usize,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            workers: vec![1, 2, 4, 8],
            queries: None,
            k: 10,
            epsilon: 0.01,
            out: "BENCH_throughput.json".to_owned(),
            check: None,
            skew: None,
            mixed: false,
            cache: 0,
            distributed: false,
            gps: 4,
            open_loop: false,
            rates: DEFAULT_OPEN_RATES.to_vec(),
            slo_ms: None,
            obs_gate: false,
            wire: false,
            connections: DEFAULT_WIRE_CONNECTIONS,
        }
    }
}

impl Args {
    /// Query count: explicit `--queries`, else 2000 for the skewed workload
    /// (repeats need volume to show), 600 for the mixed one (the exact
    /// measures are O(|V|) per query), and 200 for the uniform one.
    fn query_count(&self) -> usize {
        self.queries.unwrap_or(if self.skew.is_some() {
            2000
        } else if self.mixed {
            600
        } else {
            200
        })
    }

    /// p99 SLO in ms: explicit `--slo-ms`, else the mode's default.
    fn slo_ms(&self) -> f64 {
        self.slo_ms.unwrap_or(if self.wire {
            DEFAULT_WIRE_SLO_MS
        } else {
            DEFAULT_SLO_MS
        })
    }

    /// Cache capacity for cached runs: explicit `--cache`, else the default.
    fn cache_capacity(&self) -> usize {
        if self.cache > 0 {
            self.cache
        } else {
            DEFAULT_CACHE_CAPACITY
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--workers" => {
                args.workers = value("--workers")
                    .split(',')
                    .map(|w| w.trim().parse().expect("worker count"))
                    .collect();
                assert!(!args.workers.is_empty(), "--workers needs at least one");
            }
            "--queries" => args.queries = Some(value("--queries").parse().expect("query count")),
            "--k" => args.k = value("--k").parse().expect("k"),
            "--epsilon" => args.epsilon = value("--epsilon").parse().expect("epsilon"),
            // --json is the canonical artifact-path flag; --out remains as
            // an alias for older invocations.
            "--json" | "--out" => args.out = value(flag.as_str()),
            "--check" => args.check = Some(value("--check")),
            "--skew" => {
                let s: f64 = value("--skew").parse().expect("skew exponent");
                assert!(s > 0.0 && s.is_finite(), "--skew must be positive");
                args.skew = Some(s);
            }
            "--mixed" => args.mixed = true,
            "--cache" => args.cache = value("--cache").parse().expect("cache capacity"),
            "--backend" => {
                args.distributed = match value("--backend").as_str() {
                    "local" => false,
                    "distributed" => true,
                    other => panic!("unknown backend '{other}' (local|distributed)"),
                }
            }
            "--gps" => {
                args.gps = value("--gps").parse().expect("gp count");
                assert!(args.gps > 0, "--gps must be at least 1");
            }
            "--open-loop" => args.open_loop = true,
            "--obs-gate" => args.obs_gate = true,
            "--wire" => args.wire = true,
            "--connections" => {
                args.connections = value("--connections").parse().expect("connection count");
                assert!(args.connections > 0, "--connections must be at least 1");
            }
            "--rates" => {
                args.rates = value("--rates")
                    .split(',')
                    .map(|r| r.trim().parse().expect("offered rate"))
                    .collect();
                assert!(!args.rates.is_empty(), "--rates needs at least one");
                assert!(
                    args.rates.iter().all(|&r: &f64| r > 0.0 && r.is_finite()),
                    "--rates must be positive"
                );
            }
            "--slo-ms" => {
                let slo: f64 = value("--slo-ms").parse().expect("SLO ms");
                assert!(slo > 0.0, "--slo-ms must be positive");
                args.slo_ms = Some(slo);
            }
            "--help" | "-h" => {
                eprintln!(
                    "throughput [--workers 1,2,4,8] [--queries N] [--k K] \
                     [--epsilon E] [--skew S] [--mixed] [--cache CAPACITY] \
                     [--backend local|distributed] [--gps N] \
                     [--open-loop] [--wire] [--connections N] \
                     [--rates R1,R2,...] [--slo-ms MS] \
                     [--obs-gate] [--json PATH] [--check BASELINE_JSON]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag '{other}' (try --help)"),
        }
    }
    assert!(
        !(args.mixed && args.skew.is_some()),
        "--mixed and --skew are separate workloads; pick one"
    );
    assert!(
        !(args.distributed && (args.mixed || args.skew.is_some())),
        "--backend distributed measures the uniform workload (the \
         skew/mixed studies stay on the cold local path)"
    );
    assert!(
        !(args.open_loop && (args.mixed || args.skew.is_some() || args.distributed)),
        "--open-loop is its own study (local backend, built-in Zipf stream)"
    );
    assert!(
        !(args.obs_gate
            && (args.mixed
                || args.skew.is_some()
                || args.distributed
                || args.open_loop
                || args.check.is_some())),
        "--obs-gate is its own study (an A/B on the canonical workload)"
    );
    assert!(
        !(args.wire
            && (args.mixed
                || args.skew.is_some()
                || args.distributed
                || args.open_loop
                || args.obs_gate
                || args.check.is_some())),
        "--wire is its own study (loopback sockets, built-in Zipf stream; \
         the perf gates stay on the in-process paths)"
    );
    // The wire study writes its own document shape (BENCH_net.json).
    if args.wire && args.out == Args::default().out {
        args.out = "BENCH_net.json".to_owned();
    }
    // The obs gate writes its own document shape too.
    if args.obs_gate && args.out == Args::default().out {
        args.out = "BENCH_obs.json".to_owned();
    }
    // The distributed mode writes a different document shape; without an
    // explicit --json it must not clobber the local trajectory artifact.
    if args.distributed && args.out == Args::default().out {
        args.out = "BENCH_throughput_dist.json".to_owned();
    }
    // Likewise for the open-loop document.
    if args.open_loop && args.out == Args::default().out {
        args.out = "BENCH_throughput_openloop.json".to_owned();
    }
    args
}

/// The fixed-seed workload the CI gate replays (environment-independent:
/// `RTR_SCALE` / `RTR_SEED` are ignored so local and CI runs are the same
/// measurement). The gate always measures the cold path — result cache off
/// — so a cache can never mask a compute regression. The backend choice
/// survives into the gate: `--backend distributed --check
/// bench/baseline_dist.json` replays the same canonical workload through
/// the AP/GP backend and additionally gates the wire cost.
fn canonical_gate_args(parsed: &Args) -> (Args, QLog) {
    let args = Args {
        // The distributed gate measures the scaling clause's two
        // endpoints: a wide 8-AP pool must serve at least as fast as one
        // AP (this was false before the shared block cache — every added
        // worker re-fetched the same hot blocks). Intermediate counts are
        // left out of the canonical run: on small CI machines they only
        // measure core oversubscription, not the cliff.
        workers: if parsed.open_loop {
            vec![OPEN_LOOP_WORKERS]
        } else if parsed.distributed {
            vec![1, 8]
        } else {
            vec![1, 2, 4]
        },
        queries: Some(1000),
        check: parsed.check.clone(),
        out: parsed.out.clone(),
        distributed: parsed.distributed,
        gps: parsed.gps,
        // The open-loop gate replays the default rate sweep and SLO on the
        // default open-loop pool shape — all pinned here, not by the
        // caller, so the committed baseline always describes this exact
        // measurement.
        open_loop: parsed.open_loop,
        ..Args::default()
    };
    eprintln!(
        "[throughput] check mode: canonical workload (small QLog, seed 2013, {})",
        if args.distributed {
            "distributed backend"
        } else if args.open_loop {
            "open-loop sweep"
        } else {
            "local backend"
        }
    );
    (args, QLog::generate(&QLogConfig::small(), 2013))
}

/// Non-dangling phrase nodes, deterministically shuffled: the query pool.
fn query_pool(log: &QLog, seed: u64) -> Vec<NodeId> {
    let g = &log.graph;
    let mut pool: Vec<NodeId> = log
        .phrases
        .iter()
        .copied()
        .filter(|&v| !g.is_dangling(v))
        .collect();
    assert!(!pool.is_empty(), "QLog has no usable phrase queries");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    pool.shuffle(&mut rng);
    pool
}

/// Deterministic uniform query stream: the shuffled pool cycled up to `n`
/// (real logs repeat popular phrases; cycling models that while keeping
/// the stream deterministic).
fn sample_queries(log: &QLog, n: usize, seed: u64) -> Vec<NodeId> {
    let pool = query_pool(log, seed);
    (0..n).map(|i| pool[i % pool.len()]).collect()
}

/// Deterministic Zipf-repeat query stream: rank `r` of the hot pool is
/// drawn with probability ∝ 1/(r+1)^s, so the head repeats heavily and the
/// tail stays cold — the skewed-traffic shape `rtr-datagen` models for
/// clicks, applied to the queries themselves.
fn sample_queries_zipf(log: &QLog, n: usize, seed: u64, s: f64) -> (Vec<NodeId>, usize) {
    let pool = query_pool(log, seed);
    let hot = &pool[..pool.len().min(SKEW_HOT_POOL)];
    let zipf = Zipf::new(hot.len(), s);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5e3a);
    let queries = (0..n).map(|_| hot[zipf.sample(&mut rng)]).collect();
    (queries, hot.len())
}

/// Deterministic heterogeneous request mix: hot-pool Zipf query nodes
/// (exponent 1.0 so the cache has a head to hold) crossed with the measure
/// space — F-Rank, T-Rank, RTR, RTR+ at two β values — ~10% two-node
/// queries, and two k values. The shape one `QueryRequest`-serving pool
/// handles that the old per-engine API could not.
fn sample_requests_mixed(log: &QLog, n: usize, seed: u64) -> Vec<QueryRequest> {
    let pool = query_pool(log, seed);
    let hot = &pool[..pool.len().min(SKEW_HOT_POOL)];
    let zipf = Zipf::new(hot.len(), 1.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6d17);
    (0..n)
        .map(|_| {
            let node = hot[zipf.sample(&mut rng)];
            let mut request = if rng.gen_bool(0.1) {
                let other = hot[zipf.sample(&mut rng)];
                QueryRequest::nodes(&[node, other])
            } else {
                QueryRequest::node(node)
            };
            request = match rng.gen_range(0..5) {
                0 => request.with_measure(Measure::F),
                1 => request.with_measure(Measure::T),
                2 => request.with_measure(Measure::RtrPlus { beta: 0.3 }),
                3 => request.with_measure(Measure::RtrPlus { beta: 0.7 }),
                _ => request, // RoundTripRank
            };
            if rng.gen_bool(0.5) {
                request = request.with_k(5);
            }
            request
        })
        .collect()
}

#[derive(Clone, Copy)]
struct RunRow {
    workers: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    p50_queue_ms: f64,
    p99_queue_ms: f64,
    p50_compute_ms: f64,
    p99_compute_ms: f64,
    wall_ms: f64,
    /// Steady-state cache hit rate over the measured pass (cached runs).
    hit_rate: Option<f64>,
}

impl RunRow {
    /// Percentile rows from per-query `(queue_wait, compute)` pairs.
    fn measure(
        workers: usize,
        wall: Duration,
        splits: &[(Duration, Duration)],
        hit_rate: Option<f64>,
    ) -> RunRow {
        let queue = Summary::from_durations(splits.iter().map(|(q, _)| *q));
        let compute = Summary::from_durations(splits.iter().map(|(_, c)| *c));
        let total = Summary::from_durations(splits.iter().map(|(q, c)| *q + *c));
        RunRow {
            workers,
            qps: splits.len() as f64 / wall.as_secs_f64(),
            p50_ms: total.quantile_ms(50.0),
            p99_ms: total.quantile_ms(99.0),
            p50_queue_ms: queue.quantile_ms(50.0),
            p99_queue_ms: queue.quantile_ms(99.0),
            p50_compute_ms: compute.quantile_ms(50.0),
            p99_compute_ms: compute.quantile_ms(99.0),
            wall_ms: wall.as_secs_f64() * 1e3,
            hit_rate,
        }
    }
}

struct Measured {
    row: RunRow,
    outputs: Vec<QueryOutput>,
}

fn run_at(g: &Arc<Graph>, config: ServeConfig, queries: &[NodeId], workers: usize) -> Measured {
    let engine = ServeEngine::start(Arc::clone(g), config.with_workers(workers));
    // Warmup: populate every worker's workspace (and the OS scheduler)
    // before the measured pass.
    let warm = queries.len().min(workers.max(1) * 4);
    let _ = engine.run_batch(&queries[..warm]);
    let cache_mark = engine.cache_stats();

    let started = Instant::now();
    let outputs = engine.run_batch(queries);
    let wall = started.elapsed();
    let hit_rate = engine
        .cache_stats()
        .map(|now| cache_mark.map_or(now, |mark| now.since(&mark)).hit_rate());

    let mut splits = Vec::with_capacity(outputs.len());
    for out in &outputs {
        out.result
            .as_ref()
            .unwrap_or_else(|e| panic!("query {:?} failed: {e}", out.query));
        splits.push((out.queue_wait, out.compute));
    }
    Measured {
        row: RunRow::measure(workers, wall, &splits, hit_rate),
        outputs,
    }
}

/// [`run_at`] for a heterogeneous request workload.
fn run_requests_at(
    g: &Arc<Graph>,
    config: ServeConfig,
    requests: &[QueryRequest],
    workers: usize,
) -> (RunRow, Vec<QueryResponse>) {
    let engine = ServeEngine::start(Arc::clone(g), config.with_workers(workers));
    let warm = requests.len().min(workers.max(1) * 4);
    let _ = engine.run_requests(&requests[..warm]);
    let cache_mark = engine.cache_stats();

    let started = Instant::now();
    let responses = engine.run_requests(requests);
    let wall = started.elapsed();
    let hit_rate = engine
        .cache_stats()
        .map(|now| cache_mark.map_or(now, |mark| now.since(&mark)).hit_rate());

    let mut splits = Vec::with_capacity(responses.len());
    for r in &responses {
        r.result
            .as_ref()
            .unwrap_or_else(|e| panic!("request {:?} failed: {e}", r.request.query.nodes()));
        splits.push((r.queue_wait, r.compute));
    }
    (RunRow::measure(workers, wall, &splits, hit_rate), responses)
}

/// One extra pass of the workload with metrics + tracing enabled,
/// returning the engine's full metrics snapshot rendered as JSON. Runs
/// after — never inside — the measured passes, so the artifact's
/// `metrics` section shows what a scrape of this workload sees without
/// observability cost perturbing the reported rows.
fn capture_metrics(
    g: &Arc<Graph>,
    config: ServeConfig,
    requests: &[QueryRequest],
    workers: usize,
) -> String {
    let engine = ServeEngine::start(
        Arc::clone(g),
        config
            .with_workers(workers)
            .with_metrics(true)
            .with_tracing(true),
    );
    let _ = engine.run_requests(requests);
    engine.metrics_snapshot().to_json()
}

/// The `--obs-gate` study: replay the canonical gate workload with
/// observability disabled and enabled in order-alternating paired
/// passes, report each side's best QPS, and fail (exit 1) when the
/// minimum paired overhead exceeds [`MAX_OBS_OVERHEAD`]. The artifact
/// (`BENCH_obs.json` by default) records both sides plus the full
/// metrics snapshot of a final enabled pass.
fn run_obs_gate(args: &Args) {
    let log = QLog::generate(&QLogConfig::small(), 2013);
    // Long enough per measurement (~0.5 s) that one scheduler tick of
    // noise cannot move a pass by whole percents.
    let queries = sample_queries(&log, 2000, 2013);
    let g = Arc::new(log.graph);
    let workers = OBS_GATE_WORKERS;
    let config = ServeConfig {
        workers,
        params: RankParams::default(),
        topk: TopKConfig {
            k: args.k,
            epsilon: args.epsilon,
            ..TopKConfig::default()
        },
        ..ServeConfig::default()
    };
    println!(
        "=== observability overhead: canonical workload, {} queries, {workers} workers, \
         {OBS_GATE_PASSES} order-alternating paired passes ===",
        queries.len()
    );
    let on_config = config.with_metrics(true).with_tracing(true);
    // Discarded warmup: page the graph in and let the allocator settle
    // before anything is measured.
    run_at(&g, config, &queries, workers);
    let mut disabled: f64 = 0.0;
    let mut enabled: f64 = 0.0;
    // The gated statistic: the *minimum* paired overhead across passes.
    // Each pass runs both sides back to back under the same machine
    // climate, so noise can only inflate a pass's apparent overhead —
    // if any single pass shows the enabled side within the bound, the
    // true cost is within the bound. A real hot-path regression (a lock,
    // an allocation) slows every enabled run and no pass rescues it.
    let mut overhead = f64::INFINITY;
    for pass in 0..OBS_GATE_PASSES {
        // Alternate which side runs first (see OBS_GATE_PASSES).
        let (off, on) = if pass % 2 == 0 {
            let off = run_at(&g, config, &queries, workers).row.qps;
            let on = run_at(&g, on_config, &queries, workers).row.qps;
            (off, on)
        } else {
            let on = run_at(&g, on_config, &queries, workers).row.qps;
            let off = run_at(&g, config, &queries, workers).row.qps;
            (off, on)
        };
        println!("pass {pass}: disabled {off:.1} QPS, enabled {on:.1} QPS");
        disabled = disabled.max(off);
        enabled = enabled.max(on);
        overhead = overhead.min(1.0 - on / off);
    }
    let requests: Vec<QueryRequest> = queries.iter().map(|&q| QueryRequest::node(q)).collect();
    let metrics = capture_metrics(&g, config, &requests, workers);
    let json = format!(
        "{{\n  \"bench\": \"throughput_obs\",\n  \"scale\": \"gate-small\",\n  \"seed\": 2013,\n  \
         \"queries\": {},\n  \"workers\": {workers},\n  \"k\": {},\n  \"epsilon\": {},\n  \
         \"disabled_best_qps\": {},\n  \"enabled_best_qps\": {},\n  \
         \"overhead_fraction\": {},\n  \"max_overhead\": {},\n  \"metrics\": {metrics}\n}}\n",
        queries.len(),
        args.k,
        number(args.epsilon),
        number(disabled),
        number(enabled),
        number(overhead),
        number(MAX_OBS_OVERHEAD),
    );
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    eprintln!("[throughput] wrote {}", args.out);
    println!(
        "\nobs gate: disabled best {disabled:.1} QPS, enabled best {enabled:.1} QPS, \
         best paired overhead {:.1}% (bound {:.0}%)",
        overhead * 100.0,
        MAX_OBS_OVERHEAD * 100.0
    );
    if overhead > MAX_OBS_OVERHEAD {
        println!(
            "obs gate: FAIL — enabling metrics + tracing costs more than {:.0}% QPS",
            MAX_OBS_OVERHEAD * 100.0
        );
        std::process::exit(1);
    }
    println!("obs gate: PASS");
}

/// The skewed workload's correctness clause: cached serving must be
/// bit-identical to uncached serving, query by query.
fn assert_identical(uncached: &[QueryOutput], cached: &[QueryOutput], workers: usize) {
    assert_eq!(uncached.len(), cached.len());
    for (u, c) in uncached.iter().zip(cached) {
        let (u, c) = (u.result.as_ref().unwrap(), c.result.as_ref().unwrap());
        assert_eq!(
            u.ranking, c.ranking,
            "cached ranking diverged at {workers} workers"
        );
        assert_eq!(
            u.bounds, c.bounds,
            "cached bounds diverged at {workers} workers"
        );
    }
}

/// The mixed workload's correctness clause: pooled serving (cache off or
/// on) must be bit-identical to the serial reference, request by request.
fn assert_responses_identical(got: &[QueryResponse], want: &[QueryResponse], label: &str) {
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        let (g, w) = (g.result.as_ref().unwrap(), w.result.as_ref().unwrap());
        assert_eq!(g.ranking, w.ranking, "ranking diverged: {label}");
        assert_eq!(g.bounds, w.bounds, "bounds diverged: {label}");
    }
}

struct SkewRow {
    uncached: RunRow,
    cached: RunRow,
}

impl SkewRow {
    fn speedup(&self) -> f64 {
        self.cached.qps / self.uncached.qps
    }
}

/// Wire-cost aggregates of a distributed-backend run (the paper's Fig. 12
/// observables, summarized over the measured pass). Cold wire fetches and
/// block-cache hits are reported separately: with each worker's block
/// cache surviving across queries, most of the working set is resident and
/// repeat traffic crosses no wire at all.
struct DistSummary {
    gps: usize,
    mean_bytes_per_query: f64,
    mean_fetch_requests: f64,
    mean_blocks_fetched: f64,
    mean_blocks_prefetched: f64,
    mean_blocks_from_cache: f64,
    active_bytes_p50: f64,
    active_bytes_p99: f64,
    active_nodes_p50: f64,
    active_nodes_p99: f64,
}

impl DistSummary {
    /// Aggregate the per-response [`rtr_serve::DistributedStats`]; every
    /// response in the uniform RTR workload must be genuinely distributed.
    fn collect(gps: usize, responses: &[QueryResponse]) -> DistSummary {
        let mut bytes = Vec::with_capacity(responses.len());
        let mut fetches = Vec::with_capacity(responses.len());
        let mut fetched = Vec::with_capacity(responses.len());
        let mut prefetched = Vec::with_capacity(responses.len());
        let mut from_cache = Vec::with_capacity(responses.len());
        let mut active_bytes = Vec::with_capacity(responses.len());
        let mut active_nodes = Vec::with_capacity(responses.len());
        for r in responses {
            assert_eq!(
                r.backend,
                BackendKind::Distributed,
                "uniform RTR workload must run distributed"
            );
            let s = r.distributed.expect("distributed stats");
            // A warm block cache legitimately serves a whole query with
            // zero wire bytes; the per-query invariant is the touched-set
            // accounting, not a wire-cost floor.
            assert!(s.active_nodes > 0, "a distributed run touched nothing?");
            assert_eq!(
                s.blocks_fetched + s.blocks_from_cache,
                s.active_nodes,
                "every touched block is classified cold or cached"
            );
            bytes.push(s.bytes_transferred as u64);
            fetches.push(s.fetch_requests as u64);
            fetched.push(s.blocks_fetched as u64);
            prefetched.push(s.blocks_prefetched as u64);
            from_cache.push(s.blocks_from_cache as u64);
            active_bytes.push(s.active_bytes as u64);
            active_nodes.push(s.active_nodes as u64);
        }
        // Means come off the shared histogram too (its sum is exact, so
        // the gated mean_bytes_per_query is exact); only the active-set
        // percentiles carry the bucket relative-error bound.
        let ab = Summary::from_values(active_bytes);
        let an = Summary::from_values(active_nodes);
        let summary = DistSummary {
            gps,
            mean_bytes_per_query: Summary::from_values(bytes).mean(),
            mean_fetch_requests: Summary::from_values(fetches).mean(),
            mean_blocks_fetched: Summary::from_values(fetched).mean(),
            mean_blocks_prefetched: Summary::from_values(prefetched).mean(),
            mean_blocks_from_cache: Summary::from_values(from_cache).mean(),
            active_bytes_p50: ab.quantile(50.0),
            active_bytes_p99: ab.quantile(99.0),
            active_nodes_p50: an.quantile(50.0),
            active_nodes_p99: an.quantile(99.0),
        };
        // The pass as a whole starts cold, so some wire was crossed even
        // if most queries were then served from resident blocks.
        assert!(
            summary.mean_bytes_per_query > 0.0,
            "an entire distributed pass crossed no wire?"
        );
        summary
    }

    fn json(&self) -> String {
        format!(
            "{{ \"gps\": {}, \"mean_bytes_per_query\": {}, \"mean_fetch_requests\": {}, \
             \"mean_blocks_fetched\": {}, \"mean_blocks_prefetched\": {}, \
             \"mean_blocks_from_cache\": {}, \
             \"active_bytes_p50\": {}, \"active_bytes_p99\": {}, \
             \"active_nodes_p50\": {}, \"active_nodes_p99\": {} }}",
            self.gps,
            number(self.mean_bytes_per_query),
            number(self.mean_fetch_requests),
            number(self.mean_blocks_fetched),
            number(self.mean_blocks_prefetched),
            number(self.mean_blocks_from_cache),
            number(self.active_bytes_p50),
            number(self.active_bytes_p99),
            number(self.active_nodes_p50),
            number(self.active_nodes_p99)
        )
    }
}

/// One (scheduler, offered rate) cell of the open-loop sweep.
struct OpenRow {
    offered_qps: f64,
    queries: usize,
    /// Completion throughput over the pass (≈ offered below saturation,
    /// ≈ capacity above it).
    achieved_qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    p50_queue_ms: f64,
    p99_queue_ms: f64,
    p50_compute_ms: f64,
    p99_compute_ms: f64,
    /// p99 of submit-side schedule slip: how far the load generator fell
    /// behind its own arrival schedule. Counted into the total latency
    /// percentiles (a request delayed at the door still waited), and worth
    /// reporting on its own — sustained slip means the single submitting
    /// thread, not the pool, was the bottleneck.
    p99_slip_ms: f64,
    hit_rate: Option<f64>,
    /// Fraction of responses served inline on the submitting thread (the
    /// size-aware fast path; 0 under the legacy shared queue).
    fast_path: f64,
    slo_met: bool,
}

/// Replay `requests` against `engine` on the absolute arrival `schedule`:
/// sleep (then spin the final stretch, for timer granularity) until each
/// request's offset, submit without waiting, and only join the tickets
/// after the last submission. Returns the wall time of the whole pass and,
/// per request, the submit-side schedule slip with the response.
fn replay_open_loop(
    engine: &ServeEngine,
    requests: &[QueryRequest],
    schedule: &[Duration],
) -> (Duration, Vec<(Duration, QueryResponse)>) {
    let start = Instant::now();
    let mut pending = Vec::with_capacity(requests.len());
    for (request, &due) in requests.iter().zip(schedule) {
        pace_until(start, due);
        let slip = start.elapsed().saturating_sub(due);
        pending.push((slip, engine.submit(request.clone())));
    }
    let responses: Vec<(Duration, QueryResponse)> = pending
        .into_iter()
        .map(|(slip, ticket)| (slip, ticket.wait()))
        .collect();
    (start.elapsed(), responses)
}

/// Wait out the gap until `due` after `start`: sleep the bulk and spin
/// only the final stretch. Timer wakeups can overshoot by a millisecond
/// or two (billed to slip, identically for every side of an A/B), but a
/// generator that spins whole gaps competes with the pool for cores and
/// measures contention instead of scheduling.
fn pace_until(start: Instant, due: Duration) {
    const SPIN: Duration = Duration::from_micros(200);
    loop {
        let elapsed = start.elapsed();
        if elapsed >= due {
            return;
        }
        let wait = due - elapsed;
        if wait > SPIN {
            std::thread::sleep(wait - SPIN);
        } else {
            std::hint::spin_loop();
        }
    }
}

/// One open-loop measurement: a fresh engine under `config`, warmed with a
/// few closed-loop queries (thread spawn and first-touch costs must not
/// bill to the first offered arrivals), then the Poisson replay. Every
/// response in the verification prefix is asserted bit-identical to the
/// serial reference.
fn open_loop_once(
    g: &Arc<Graph>,
    config: ServeConfig,
    requests: &[QueryRequest],
    schedule: &[Duration],
    offered: f64,
    slo_ms: f64,
    serial: &[QueryResponse],
) -> OpenRow {
    let engine = ServeEngine::start(Arc::clone(g), config);
    let warm = requests.len().min(engine.workers() * 4);
    let _ = engine.run_requests(&requests[..warm]);
    let cache_mark = engine.cache_stats();

    let (wall, responses) = replay_open_loop(&engine, requests, schedule);
    let hit_rate = engine
        .cache_stats()
        .map(|now| cache_mark.map_or(now, |mark| now.since(&mark)).hit_rate());
    for ((_, got), want) in responses.iter().zip(serial) {
        let (got, want) = (got.result.as_ref().unwrap(), want.result.as_ref().unwrap());
        assert_eq!(
            got.ranking, want.ranking,
            "open-loop ranking diverged from serial at {offered} QPS"
        );
        assert_eq!(
            got.bounds, want.bounds,
            "open-loop bounds diverged from serial at {offered} QPS"
        );
    }

    let mut total = Vec::with_capacity(responses.len());
    let mut queue = Vec::with_capacity(responses.len());
    let mut compute = Vec::with_capacity(responses.len());
    let mut slips = Vec::with_capacity(responses.len());
    let mut inline = 0usize;
    for (slip, r) in &responses {
        r.result
            .as_ref()
            .unwrap_or_else(|e| panic!("open-loop query failed: {e}"));
        total.push(*slip + r.queue_wait + r.compute);
        queue.push(r.queue_wait);
        compute.push(r.compute);
        slips.push(*slip);
        inline += usize::from(r.worker.is_none());
    }
    let total = Summary::from_durations(total);
    let queue = Summary::from_durations(queue);
    let compute = Summary::from_durations(compute);
    let slips = Summary::from_durations(slips);
    let p99_ms = total.quantile_ms(99.0);
    OpenRow {
        offered_qps: offered,
        queries: requests.len(),
        achieved_qps: requests.len() as f64 / wall.as_secs_f64(),
        p50_ms: total.quantile_ms(50.0),
        p99_ms,
        p50_queue_ms: queue.quantile_ms(50.0),
        p99_queue_ms: queue.quantile_ms(99.0),
        p50_compute_ms: compute.quantile_ms(50.0),
        p99_compute_ms: compute.quantile_ms(99.0),
        p99_slip_ms: slips.quantile_ms(99.0),
        hit_rate,
        fast_path: inline as f64 / responses.len().max(1) as f64,
        slo_met: p99_ms <= slo_ms,
    }
}

/// [`open_loop_once`] repeated [`OPEN_LOOP_REPEATS`] times on fresh
/// engines over the identical schedule; returns the repeat with the median
/// p99 — one coherent pass, insulated from one-off scheduling hiccups.
#[allow(clippy::too_many_arguments)]
fn open_loop_pass(
    g: &Arc<Graph>,
    config: ServeConfig,
    requests: &[QueryRequest],
    schedule: &[Duration],
    offered: f64,
    slo_ms: f64,
    serial: &[QueryResponse],
) -> OpenRow {
    let mut passes: Vec<OpenRow> = (0..OPEN_LOOP_REPEATS)
        .map(|_| open_loop_once(g, config, requests, schedule, offered, slo_ms, serial))
        .collect();
    passes.sort_by(|a, b| a.p99_ms.partial_cmp(&b.p99_ms).expect("NaN p99"));
    passes.swap_remove(passes.len() / 2)
}

/// Per-rate sample size of the open-loop sweep: about half a second to two
/// seconds of offered traffic, bounded so saturated rates (which drain at
/// capacity, not at the offered rate) still finish promptly.
fn open_loop_queries(rate: f64) -> usize {
    ((rate * 0.5) as usize).clamp(1000, 12_000)
}

/// Highest offered rate whose p99 met the SLO (0 when none did).
fn max_sustainable(rows: &[OpenRow]) -> f64 {
    rows.iter()
        .filter(|r| r.slo_met)
        .map(|r| r.offered_qps)
        .fold(0.0, f64::max)
}

fn scheduler_label(mode: SchedulerMode) -> &'static str {
    match mode {
        SchedulerMode::SharedQueue => "shared_queue",
        SchedulerMode::WorkStealing => "work_stealing",
    }
}

/// The open-loop artifact: the headline `max_sustainable_qps` (the
/// work-stealing scheduler's — the default one) first, then one sweep per
/// scheduler over identical arrival schedules. Schema in
/// `docs/BENCHMARKS.md`.
#[allow(clippy::too_many_arguments)]
fn emit_openloop_json(
    path: &str,
    scale_label: &str,
    workload_seed: u64,
    args: &Args,
    g: &Graph,
    workers: usize,
    headline: f64,
    sweeps: &[(SchedulerMode, Vec<OpenRow>)],
    metrics: &str,
) {
    let row_json = |r: &OpenRow| {
        let mut s = format!(
            "{{ \"offered_qps\": {}, \"queries\": {}, \"achieved_qps\": {}, \
             \"p50_ms\": {}, \"p99_ms\": {}, \
             \"p50_queue_ms\": {}, \"p99_queue_ms\": {}, \
             \"p50_compute_ms\": {}, \"p99_compute_ms\": {}, \
             \"p99_slip_ms\": {}, \"fast_path_fraction\": {}, \"slo_met\": {}",
            number(r.offered_qps),
            r.queries,
            number(r.achieved_qps),
            number(r.p50_ms),
            number(r.p99_ms),
            number(r.p50_queue_ms),
            number(r.p99_queue_ms),
            number(r.p50_compute_ms),
            number(r.p99_compute_ms),
            number(r.p99_slip_ms),
            number(r.fast_path),
            r.slo_met
        );
        if let Some(h) = r.hit_rate {
            s.push_str(&format!(", \"hit_rate\": {}", number(h)));
        }
        s.push_str(" }");
        s
    };
    let sweeps_json = sweeps
        .iter()
        .map(|(mode, rows)| {
            let rates = rows
                .iter()
                .map(|r| format!("        {}", row_json(r)))
                .collect::<Vec<String>>()
                .join(",\n");
            format!(
                "    {{ \"scheduler\": \"{}\", \"max_sustainable_qps\": {},\n      \
                 \"rates\": [\n{}\n      ] }}",
                scheduler_label(*mode),
                number(max_sustainable(rows)),
                rates
            )
        })
        .collect::<Vec<String>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"throughput_openloop\",\n  \"scale\": \"{scale_label}\",\n  \
         \"seed\": {workload_seed},\n  \
         \"max_sustainable_qps\": {},\n  \"slo_ms\": {},\n  \
         \"graph\": {{ \"nodes\": {}, \"edges\": {} }},\n  \
         \"k\": {},\n  \"epsilon\": {},\n  \"skew\": {},\n  \
         \"cache_capacity\": {},\n  \"workers\": {workers},\n  \
         \"schedulers\": [\n{sweeps_json}\n  ],\n  \"metrics\": {metrics}\n}}\n",
        number(headline),
        number(args.slo_ms()),
        g.node_count(),
        g.edge_count(),
        args.k,
        number(args.epsilon),
        number(OPEN_LOOP_SKEW),
        args.cache_capacity(),
    );
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("[throughput] wrote {path}");
}

/// The whole open-loop study: generate the stream once, then for each
/// scheduler × offered rate replay the identical Poisson schedule and
/// measure the latency curve. Returns after emitting the artifact and (in
/// check mode) applying the gate — open-loop runs share nothing with the
/// closed-loop document shape.
fn run_open_loop(args: &Args, log: QLog, scale_label: &str, workload_seed: u64) {
    let n_max = args
        .rates
        .iter()
        .map(|&r| open_loop_queries(r))
        .max()
        .expect("at least one rate");
    let (queries, hot_pool) = sample_queries_zipf(&log, n_max, workload_seed, OPEN_LOOP_SKEW);
    let requests: Vec<QueryRequest> = queries.iter().map(|&q| QueryRequest::node(q)).collect();
    let g = Arc::new(log.graph);
    let workers = if args.workers == Args::default().workers {
        OPEN_LOOP_WORKERS
    } else {
        args.workers[0]
    };
    // The open-loop study measures the serving stack as deployed: result
    // cache on (the Zipf head repeats), so the submit-side fast path and
    // the attach batching participate. A compute regression is still
    // caught — the closed-loop gate measures the cold path.
    let config = ServeConfig {
        workers,
        params: RankParams::default(),
        topk: TopKConfig {
            k: args.k,
            epsilon: args.epsilon,
            ..TopKConfig::default()
        },
        ..ServeConfig::default()
    }
    .with_cache_capacity(args.cache_capacity());

    println!(
        "=== open-loop load: Zipf s = {OPEN_LOOP_SKEW} over {hot_pool} hot queries, \
         K = {}, ε = {}, {} workers, cache {}, SLO p99 ≤ {} ms ===",
        args.k,
        args.epsilon,
        workers,
        args.cache_capacity(),
        args.slo_ms()
    );
    let serial = run_serial_requests(
        &g,
        &config,
        &requests[..requests.len().min(OPEN_LOOP_VERIFY_PREFIX)],
    );

    let mut sweeps: Vec<(SchedulerMode, Vec<OpenRow>)> = Vec::new();
    for mode in [SchedulerMode::WorkStealing, SchedulerMode::SharedQueue] {
        println!("--- scheduler: {} ---", scheduler_label(mode));
        println!(
            "{:>12} {:>10} {:>10} {:>10} {:>12} {:>10} {:>6}",
            "offered", "achieved", "p50/ms", "p99/ms", "p99 queue", "inline", "SLO"
        );
        let mut rows = Vec::new();
        for &rate in &args.rates {
            let n = open_loop_queries(rate);
            // One schedule per rate, identical across schedulers: the A/B
            // compares service policies under the same offered load.
            let schedule = poisson_arrivals(rate, n, workload_seed ^ 0x09e0);
            let row = open_loop_pass(
                &g,
                config.with_scheduler(mode),
                &requests[..n],
                &schedule,
                rate,
                args.slo_ms(),
                &serial,
            );
            println!(
                "{:>12.0} {:>10.1} {:>10.3} {:>10.3} {:>12.3} {:>5.0}% {:>6}",
                row.offered_qps,
                row.achieved_qps,
                row.p50_ms,
                row.p99_ms,
                row.p99_queue_ms,
                row.fast_path * 100.0,
                if row.slo_met { "ok" } else { "MISS" }
            );
            rows.push(row);
        }
        println!("max sustainable at SLO: {:.0} QPS", max_sustainable(&rows));
        sweeps.push((mode, rows));
    }
    // The headline is the default scheduler's number.
    let headline = max_sustainable(&sweeps[0].1);
    // One extra unmeasured observability-enabled replay of the workload
    // head, so the artifact shows what a scrape of this engine would see.
    let metrics = capture_metrics(
        &g,
        config,
        &requests[..requests.len().min(OPEN_LOOP_VERIFY_PREFIX)],
        workers,
    );
    emit_openloop_json(
        &args.out,
        scale_label,
        workload_seed,
        args,
        &g,
        workers,
        headline,
        &sweeps,
        &metrics,
    );

    if let Some(baseline_path) = &args.check {
        let text = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("reading baseline {baseline_path}: {e}"));
        let baseline = number_field(&text, "max_sustainable_qps")
            .unwrap_or_else(|| panic!("no \"max_sustainable_qps\" in {baseline_path}"));
        let floor = baseline * (1.0 - MAX_QPS_DROP);
        println!(
            "\nperf gate: measured max sustainable {headline:.0} QPS vs baseline \
             {baseline:.0} (floor {floor:.0} = baseline - {:.0}%)",
            MAX_QPS_DROP * 100.0
        );
        if headline < floor {
            println!(
                "perf gate: FAIL — max-sustainable-QPS-at-SLO dropped more than {:.0}%",
                MAX_QPS_DROP * 100.0
            );
            std::process::exit(1);
        }
        println!("perf gate: PASS");
    }
}

/// One offered-rate cell of the `--wire` sweep. Latency is client-side
/// wall clock from scheduled arrival to decoded response — framing,
/// syscalls, admission, and the write queue included. The server-side
/// queue/compute split rides along in response provenance.
struct WireRow {
    offered_qps: f64,
    queries: usize,
    achieved_qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    p50_server_queue_ms: f64,
    p99_server_queue_ms: f64,
    p50_compute_ms: f64,
    p99_compute_ms: f64,
    /// Wire-level rejections (rate limit or write-queue backpressure).
    /// Any reject disqualifies this rate from the SLO: a server that
    /// sheds load is not *sustaining* it.
    rejects: usize,
    slo_met: bool,
}

/// [`pace_until`] for the wire senders: same sleep-the-bulk strategy, but
/// the final stretch *yields* instead of spinning. Once the offered rate
/// pushes inter-arrival gaps under the spin window, pacing threads that
/// spin own every core of a small box and starve the very server being
/// measured; yielding keeps the schedule honest (overshoot is billed to
/// the measured latency, identically at every rate) without the
/// generator competing with the workers.
fn pace_until_yielding(start: Instant, due: Duration) {
    const SPIN: Duration = Duration::from_micros(200);
    loop {
        let elapsed = start.elapsed();
        if elapsed >= due {
            return;
        }
        let wait = due - elapsed;
        if wait > SPIN {
            std::thread::sleep(wait - SPIN);
        } else {
            std::thread::yield_now();
        }
    }
}

/// One wire-level pass at one offered rate: `connections` split clients
/// replay the Poisson schedule round-robin over loopback — each
/// connection pacing sends on one thread while a second drains
/// responses, so the offered schedule never waits on a round trip.
fn wire_once(
    addr: std::net::SocketAddr,
    requests: &[QueryRequest],
    schedule: &[Duration],
    connections: usize,
    offered: f64,
    slo_ms: f64,
    serial: &[QueryResponse],
) -> WireRow {
    // Connect (and split) everything before t = 0, so connection setup
    // never bills to the first arrivals.
    let mut split_clients = Vec::with_capacity(connections);
    for _ in 0..connections {
        let client = NetClient::connect(addr).expect("connect load connection");
        split_clients.push(client.split().expect("split load connection"));
    }
    let start = Instant::now();
    let mut handles = Vec::with_capacity(connections);
    for (c, (mut tx, mut rx)) in split_clients.into_iter().enumerate() {
        // Round-robin assignment: connection c carries stream indices
        // c, c+C, c+2C, ...; per-connection FIFO delivery then maps its
        // k-th outcome back to global index c + k*C.
        let mine: Vec<(Duration, QueryRequest)> = requests
            .iter()
            .zip(schedule)
            .skip(c)
            .step_by(connections)
            .map(|(r, &due)| (due, r.clone()))
            .collect();
        let count = mine.len();
        let sender = std::thread::spawn(move || {
            for (due, request) in &mine {
                pace_until_yielding(start, *due);
                tx.send(request).expect("wire send");
            }
        });
        let receiver = std::thread::spawn(move || {
            (0..count)
                .map(|_| {
                    let (_, outcome) = rx.recv().expect("wire recv");
                    (Instant::now(), outcome)
                })
                .collect::<Vec<_>>()
        });
        handles.push((c, sender, receiver));
    }

    let mut total = Vec::with_capacity(requests.len());
    let mut queue = Vec::with_capacity(requests.len());
    let mut compute = Vec::with_capacity(requests.len());
    let mut rejects = 0usize;
    let mut last_done = start;
    for (c, sender, receiver) in handles {
        sender.join().expect("sender thread");
        let outcomes = receiver.join().expect("receiver thread");
        for (k, (at, outcome)) in outcomes.into_iter().enumerate() {
            let idx = c + k * connections;
            total.push(at.duration_since(start).saturating_sub(schedule[idx]));
            last_done = last_done.max(at);
            match outcome {
                Ok(response) => {
                    if let Some(want) = serial.get(idx) {
                        let got = response.result.as_ref().unwrap();
                        let want = want.result.as_ref().unwrap();
                        assert_eq!(
                            got.ranking, want.ranking,
                            "wire ranking diverged from serial at {offered} QPS"
                        );
                        assert_eq!(
                            got.bounds, want.bounds,
                            "wire bounds diverged from serial at {offered} QPS"
                        );
                    }
                    queue.push(response.queue_wait);
                    compute.push(response.compute);
                }
                Err(_) => rejects += 1,
            }
        }
    }
    let wall = last_done.duration_since(start);
    let total = Summary::from_durations(total);
    let queue = Summary::from_durations(queue);
    let compute = Summary::from_durations(compute);
    let p99_ms = total.quantile_ms(99.0);
    WireRow {
        offered_qps: offered,
        queries: requests.len(),
        achieved_qps: requests.len() as f64 / wall.as_secs_f64().max(1e-9),
        p50_ms: total.quantile_ms(50.0),
        p99_ms,
        p50_server_queue_ms: queue.quantile_ms(50.0),
        p99_server_queue_ms: queue.quantile_ms(99.0),
        p50_compute_ms: compute.quantile_ms(50.0),
        p99_compute_ms: compute.quantile_ms(99.0),
        rejects,
        slo_met: p99_ms <= slo_ms && rejects == 0,
    }
}

/// [`wire_once`] repeated [`OPEN_LOOP_REPEATS`] times over the identical
/// schedule; returns the repeat with the median p99 (same insulation
/// from one-off scheduling hiccups as the in-process open-loop pass).
fn wire_pass(
    addr: std::net::SocketAddr,
    requests: &[QueryRequest],
    schedule: &[Duration],
    connections: usize,
    offered: f64,
    slo_ms: f64,
    serial: &[QueryResponse],
) -> WireRow {
    let mut passes: Vec<WireRow> = (0..OPEN_LOOP_REPEATS)
        .map(|_| {
            wire_once(
                addr,
                requests,
                schedule,
                connections,
                offered,
                slo_ms,
                serial,
            )
        })
        .collect();
    passes.sort_by(|a, b| a.p99_ms.partial_cmp(&b.p99_ms).expect("NaN p99"));
    passes.swap_remove(passes.len() / 2)
}

/// The wire-level artifact (`BENCH_net.json`): the
/// max-sustainable-QPS-at-SLO headline, one row per offered rate, and
/// the serving engine's metrics snapshot — the same registry the
/// `rtr_net_*` counters live in, so the committed JSON carries the front
/// door's own accounting.
#[allow(clippy::too_many_arguments)]
fn emit_wire_json(
    path: &str,
    scale_label: &str,
    workload_seed: u64,
    args: &Args,
    g: &Graph,
    workers: usize,
    headline: f64,
    rows: &[WireRow],
    metrics: &str,
) {
    let rows_json = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"offered_qps\": {}, \"queries\": {}, \"achieved_qps\": {}, \
                 \"p50_ms\": {}, \"p99_ms\": {}, \
                 \"p50_server_queue_ms\": {}, \"p99_server_queue_ms\": {}, \
                 \"p50_compute_ms\": {}, \"p99_compute_ms\": {}, \
                 \"rejects\": {}, \"slo_met\": {} }}",
                number(r.offered_qps),
                r.queries,
                number(r.achieved_qps),
                number(r.p50_ms),
                number(r.p99_ms),
                number(r.p50_server_queue_ms),
                number(r.p99_server_queue_ms),
                number(r.p50_compute_ms),
                number(r.p99_compute_ms),
                r.rejects,
                r.slo_met
            )
        })
        .collect::<Vec<String>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"throughput_wire\",\n  \"scale\": \"{scale_label}\",\n  \
         \"seed\": {workload_seed},\n  \
         \"max_sustainable_qps\": {},\n  \"slo_ms\": {},\n  \
         \"graph\": {{ \"nodes\": {}, \"edges\": {} }},\n  \
         \"k\": {},\n  \"epsilon\": {},\n  \"skew\": {},\n  \
         \"cache_capacity\": {},\n  \"workers\": {workers},\n  \"connections\": {},\n  \
         \"rates\": [\n{rows_json}\n  ],\n  \"metrics\": {metrics}\n}}\n",
        number(headline),
        number(args.slo_ms()),
        g.node_count(),
        g.edge_count(),
        args.k,
        number(args.epsilon),
        number(OPEN_LOOP_SKEW),
        args.cache_capacity(),
        args.connections,
    );
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("[throughput] wrote {path}");
}

/// The whole wire-level study: one engine behind one [`NetServer`] on an
/// ephemeral loopback port, then for each offered rate replay the
/// identical Poisson schedule through `--connections` split clients and
/// measure the client-observed latency curve. The engine — and its
/// result cache — persists across rates (the deployed shape); the serial
/// bit-identity prefix is re-verified at every rate, over the wire.
fn run_wire(args: &Args, log: QLog, scale_label: &str, workload_seed: u64) {
    let n_max = args
        .rates
        .iter()
        .map(|&r| open_loop_queries(r))
        .max()
        .expect("at least one rate");
    let (queries, hot_pool) = sample_queries_zipf(&log, n_max, workload_seed, OPEN_LOOP_SKEW);
    let requests: Vec<QueryRequest> = queries.iter().map(|&q| QueryRequest::node(q)).collect();
    let g = Arc::new(log.graph);
    let workers = if args.workers == Args::default().workers {
        OPEN_LOOP_WORKERS
    } else {
        args.workers[0]
    };
    let config = ServeConfig {
        workers,
        params: RankParams::default(),
        topk: TopKConfig {
            k: args.k,
            epsilon: args.epsilon,
            ..TopKConfig::default()
        },
        ..ServeConfig::default()
    }
    .with_cache_capacity(args.cache_capacity());

    println!(
        "=== wire-level open-loop load: Zipf s = {OPEN_LOOP_SKEW} over {hot_pool} hot queries, \
         K = {}, ε = {}, {} workers, {} connections, cache {}, SLO p99 ≤ {} ms ===",
        args.k,
        args.epsilon,
        workers,
        args.connections,
        args.cache_capacity(),
        args.slo_ms()
    );
    let serial = run_serial_requests(
        &g,
        &config,
        &requests[..requests.len().min(OPEN_LOOP_VERIFY_PREFIX)],
    );

    let engine = Arc::new(ServeEngine::start(Arc::clone(&g), config));
    let server = NetServer::start(
        Arc::clone(&engine),
        NetServerConfig::default()
            .with_max_connections(args.connections + 8)
            .with_queue_depths(WIRE_QUEUE_DEPTH, WIRE_CONTROL_DEPTH),
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Closed-loop warmup over the wire: worker workspaces, the accept
    // path, and first-touch costs settle before anything is measured.
    {
        let mut warm = NetClient::connect(addr).expect("warmup connect");
        for request in requests.iter().take(workers.max(1) * 4) {
            warm.call(request)
                .expect("warmup call")
                .expect("warmup admitted");
        }
    }

    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>13} {:>8} {:>6}",
        "offered", "achieved", "p50/ms", "p99/ms", "p99 srv q", "rejects", "SLO"
    );
    let mut rows = Vec::new();
    for &rate in &args.rates {
        let n = open_loop_queries(rate);
        // One schedule per rate, identical across repeats — replayable
        // load: (rate, n, seed) names the exact arrival sequence.
        let schedule = poisson_arrivals(rate, n, workload_seed ^ 0x11e7);
        let row = wire_pass(
            addr,
            &requests[..n],
            &schedule,
            args.connections,
            rate,
            args.slo_ms(),
            &serial,
        );
        println!(
            "{:>12.0} {:>10.1} {:>10.3} {:>10.3} {:>13.3} {:>8} {:>6}",
            row.offered_qps,
            row.achieved_qps,
            row.p50_ms,
            row.p99_ms,
            row.p99_server_queue_ms,
            row.rejects,
            if row.slo_met { "ok" } else { "MISS" }
        );
        rows.push(row);
    }
    let headline = rows
        .iter()
        .filter(|r| r.slo_met)
        .map(|r| r.offered_qps)
        .fold(0.0, f64::max);
    println!("max sustainable at SLO (wire): {headline:.0} QPS");
    let metrics = engine.metrics_snapshot().to_json();
    emit_wire_json(
        &args.out,
        scale_label,
        workload_seed,
        args,
        &g,
        workers,
        headline,
        &rows,
        &metrics,
    );
    server.shutdown();
}

#[allow(clippy::too_many_arguments)]
fn emit_json(
    path: &str,
    scale_label: &str,
    workload_seed: u64,
    args: &Args,
    g: &Graph,
    rows: &[RunRow],
    skew_rows: &[SkewRow],
    mixed_rows: &[SkewRow],
    dist: Option<&DistSummary>,
    metrics: &str,
) {
    let best = rows
        .iter()
        .max_by(|a, b| a.qps.partial_cmp(&b.qps).expect("NaN qps"))
        .expect("at least one run");
    let run_json = |r: &RunRow| {
        let mut s = format!(
            "{{ \"workers\": {}, \"qps\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \
             \"p50_queue_ms\": {}, \"p99_queue_ms\": {}, \
             \"p50_compute_ms\": {}, \"p99_compute_ms\": {}, \"wall_ms\": {}",
            r.workers,
            number(r.qps),
            number(r.p50_ms),
            number(r.p99_ms),
            number(r.p50_queue_ms),
            number(r.p99_queue_ms),
            number(r.p50_compute_ms),
            number(r.p99_compute_ms),
            number(r.wall_ms)
        );
        if let Some(h) = r.hit_rate {
            s.push_str(&format!(", \"hit_rate\": {}", number(h)));
        }
        s.push_str(" }");
        s
    };
    let paired_runs = |pairs: &[SkewRow]| -> String {
        pairs
            .iter()
            .map(|sr| {
                format!(
                    "    {{ \"workers\": {}, \"uncached\": {}, \"cached\": {}, \"speedup\": {} }}",
                    sr.uncached.workers,
                    run_json(&sr.uncached),
                    run_json(&sr.cached),
                    number(sr.speedup())
                )
            })
            .collect::<Vec<String>>()
            .join(",\n")
    };
    let runs: Vec<String> = rows
        .iter()
        .map(|r| format!("    {}", run_json(r)))
        .collect();
    let mut extra = String::new();
    if let Some(s) = args.skew {
        extra = format!(
            ",\n  \"skew\": {},\n  \"cache_capacity\": {},\n  \"skew_runs\": [\n{}\n  ]",
            number(s),
            args.cache_capacity(),
            paired_runs(skew_rows)
        );
    }
    if args.mixed {
        extra = format!(
            ",\n  \"mixed\": true,\n  \"cache_capacity\": {},\n  \"mixed_runs\": [\n{}\n  ]",
            args.cache_capacity(),
            paired_runs(mixed_rows)
        );
    }
    if let Some(d) = dist {
        extra = format!(",\n  \"distributed\": {}", d.json());
    }
    // Always the last section: the gate reads baselines with first-match
    // number scans, and a snapshot is full of similarly named numbers.
    extra.push_str(&format!(",\n  \"metrics\": {metrics}"));
    let backend = if args.distributed {
        "distributed"
    } else {
        "local"
    };
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"scale\": \"{scale_label}\",\n  \"seed\": {},\n  \
         \"backend\": \"{backend}\",\n  \
         \"graph\": {{ \"nodes\": {}, \"edges\": {} }},\n  \"k\": {},\n  \"epsilon\": {},\n  \
         \"queries\": {},\n  \"runs\": [\n{}\n  ],\n  \"best_workers\": {},\n  \"best_qps\": {}{extra}\n}}\n",
        workload_seed,
        g.node_count(),
        g.edge_count(),
        args.k,
        number(args.epsilon),
        args.query_count(),
        runs.join(",\n"),
        best.workers,
        number(best.qps),
    );
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("[throughput] wrote {path}");
}

fn main() {
    let parsed = parse_args();
    if parsed.obs_gate {
        run_obs_gate(&parsed);
        return;
    }
    let (args, log) = if parsed.check.is_some() {
        canonical_gate_args(&parsed)
    } else {
        (parsed, qlog())
    };
    let scale_label = if args.check.is_some() {
        "gate-small".to_owned()
    } else {
        format!("{:?}", Scale::from_env()).to_lowercase()
    };

    // In check mode the workload is hard-pinned to seed 2013; the JSON
    // must record the seed that actually ran, not the RTR_SEED env.
    let workload_seed = if args.check.is_some() { 2013 } else { seed() };
    if args.wire {
        run_wire(&args, log, &scale_label, workload_seed);
        return;
    }
    if args.open_loop {
        run_open_loop(&args, log, &scale_label, workload_seed);
        return;
    }
    let n_queries = args.query_count();
    let (queries, hot_pool) = match args.skew {
        Some(s) => sample_queries_zipf(&log, n_queries, workload_seed, s),
        None if args.mixed => (Vec::new(), 0),
        None => (sample_queries(&log, n_queries, workload_seed), 0),
    };
    let mixed_requests = if args.mixed {
        sample_requests_mixed(&log, n_queries, workload_seed)
    } else {
        Vec::new()
    };
    let g = Arc::new(log.graph);
    let config = ServeConfig {
        workers: 1,
        params: RankParams::default(),
        topk: TopKConfig {
            k: args.k,
            epsilon: args.epsilon,
            ..TopKConfig::default()
        },
        // The gate always measures the cold path; plain runs honor --cache.
        ..ServeConfig::default()
    }
    .with_cache_capacity(if args.check.is_some() { 0 } else { args.cache });

    println!(
        "=== serving throughput: {} queries, K = {}, ε = {} on {} nodes / {} edges ===",
        n_queries,
        args.k,
        args.epsilon,
        g.node_count(),
        g.edge_count()
    );
    let mut rows = Vec::new();
    let mut skew_rows = Vec::new();
    let mut mixed_rows = Vec::new();
    let mut dist_summary: Option<DistSummary> = None;
    if args.distributed {
        println!(
            "--- distributed backend: {} GPs, uniform RTR workload ---",
            args.gps
        );
        let requests: Vec<QueryRequest> = queries.iter().map(|&q| QueryRequest::node(q)).collect();
        // The ground truth every distributed pass must reproduce bit for
        // bit: the serial local reference (the backends mirror exactly).
        let serial = run_serial_requests(&g, &config, &requests);
        let dconfig = config.with_backend(Backend::Distributed { gps: args.gps });
        println!(
            "{:>8} {:>12} {:>10} {:>10} {:>13} {:>9} {:>9} {:>9}",
            "workers", "QPS", "p50/ms", "p99/ms", "KB/query", "fetches", "cold", "cached"
        );
        for &workers in &args.workers {
            let (row, responses) = run_requests_at(&g, dconfig, &requests, workers);
            assert_responses_identical(
                &responses,
                &serial,
                &format!("{workers} workers, distributed vs serial local"),
            );
            let d = DistSummary::collect(args.gps, &responses);
            println!(
                "{:>8} {:>12.1} {:>10.3} {:>10.3} {:>13.2} {:>9.1} {:>9.1} {:>9.1}",
                row.workers,
                row.qps,
                row.p50_ms,
                row.p99_ms,
                d.mean_bytes_per_query / 1024.0,
                d.mean_fetch_requests,
                d.mean_blocks_fetched,
                d.mean_blocks_from_cache
            );
            rows.push(row);
            // Wire cost depends on how warm each worker's block cache gets,
            // so it varies with the worker count; keep the single-worker
            // pass (one cache sees the whole stream — fully deterministic)
            // as the canonical aggregate.
            if dist_summary.is_none() {
                dist_summary = Some(d);
            }
        }
    } else if args.mixed {
        println!(
            "--- mixed-request workload: F/T/RTR/RTR+β, 1-2 nodes, k ∈ {{5, {}}}, cache capacity {} ---",
            args.k,
            args.cache_capacity()
        );
        // The ground truth every measured pass must reproduce bit for bit.
        let serial = run_serial_requests(&g, &config, &mixed_requests);
        println!(
            "{:>8} {:>12} {:>12} {:>10} {:>9}",
            "workers", "QPS(off)", "QPS(on)", "hit rate", "speedup"
        );
        for &workers in &args.workers {
            let (off_row, off) =
                run_requests_at(&g, config.with_cache_capacity(0), &mixed_requests, workers);
            let (on_row, on) = run_requests_at(
                &g,
                config.with_cache_capacity(args.cache_capacity()),
                &mixed_requests,
                workers,
            );
            assert_responses_identical(&off, &serial, &format!("{workers} workers, cache off"));
            assert_responses_identical(&on, &serial, &format!("{workers} workers, cache on"));
            let sr = SkewRow {
                uncached: off_row,
                cached: on_row,
            };
            println!(
                "{:>8} {:>12.1} {:>12.1} {:>9.1}% {:>8.2}x",
                workers,
                sr.uncached.qps,
                sr.cached.qps,
                sr.cached.hit_rate.unwrap_or(0.0) * 100.0,
                sr.speedup()
            );
            // The uncached run doubles as this worker count's plain row, so
            // best_qps keeps its cold-path meaning in mixed mode too.
            rows.push(RunRow {
                hit_rate: None,
                ..sr.uncached
            });
            mixed_rows.push(sr);
        }
    } else if let Some(s) = args.skew {
        println!(
            "--- Zipf-repeat workload: s = {s}, hot pool {hot_pool}, cache capacity {} ---",
            args.cache_capacity()
        );
        println!(
            "{:>8} {:>12} {:>12} {:>10} {:>9}",
            "workers", "QPS(off)", "QPS(on)", "hit rate", "speedup"
        );
        for &workers in &args.workers {
            let uncached = run_at(&g, config.with_cache_capacity(0), &queries, workers);
            let cached = run_at(
                &g,
                config.with_cache_capacity(args.cache_capacity()),
                &queries,
                workers,
            );
            assert_identical(&uncached.outputs, &cached.outputs, workers);
            let sr = SkewRow {
                uncached: uncached.row,
                cached: cached.row,
            };
            println!(
                "{:>8} {:>12.1} {:>12.1} {:>9.1}% {:>8.2}x",
                workers,
                sr.uncached.qps,
                sr.cached.qps,
                sr.cached.hit_rate.unwrap_or(0.0) * 100.0,
                sr.speedup()
            );
            // The uncached run doubles as this worker count's plain row, so
            // best_qps keeps its cold-path meaning in skew mode too.
            rows.push(RunRow {
                hit_rate: None,
                ..sr.uncached
            });
            skew_rows.push(sr);
        }
    } else {
        println!(
            "{:>8} {:>12} {:>10} {:>10} {:>10}",
            "workers", "QPS", "p50/ms", "p99/ms", "wall/ms"
        );
        for &workers in &args.workers {
            let m = run_at(&g, config, &queries, workers);
            let row = m.row;
            println!(
                "{:>8} {:>12.1} {:>10.3} {:>10.3} {:>10.1}",
                row.workers, row.qps, row.p50_ms, row.p99_ms, row.wall_ms
            );
            rows.push(row);
        }
    }
    // The artifact's observability section: replay the workload once more
    // (at the best-measured worker count) with metrics + tracing on and
    // snapshot the engine — the same catalog a Prometheus scrape of this
    // workload would see.
    let obs_workers = rows
        .iter()
        .max_by(|a, b| a.qps.partial_cmp(&b.qps).expect("NaN qps"))
        .expect("at least one run")
        .workers;
    let obs_requests: Vec<QueryRequest> = if args.mixed {
        mixed_requests.clone()
    } else {
        queries.iter().map(|&q| QueryRequest::node(q)).collect()
    };
    let obs_config = if args.distributed {
        config.with_backend(Backend::Distributed { gps: args.gps })
    } else {
        config
    };
    let metrics = capture_metrics(&g, obs_config, &obs_requests, obs_workers);
    emit_json(
        &args.out,
        &scale_label,
        workload_seed,
        &args,
        &g,
        &rows,
        &skew_rows,
        &mixed_rows,
        dist_summary.as_ref(),
        &metrics,
    );

    if let Some(baseline_path) = &args.check {
        let text = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("reading baseline {baseline_path}: {e}"));
        let baseline_qps =
            number_field(&text, "qps").unwrap_or_else(|| panic!("no \"qps\" in {baseline_path}"));
        let measured = rows.iter().map(|r| r.qps).fold(f64::NEG_INFINITY, f64::max);
        let floor = baseline_qps * (1.0 - MAX_QPS_DROP);
        let mut failures = Vec::new();
        println!(
            "\nperf gate: measured best {measured:.1} QPS vs baseline {baseline_qps:.1} \
             (floor {floor:.1} = baseline - {:.0}%)",
            MAX_QPS_DROP * 100.0
        );
        if measured < floor {
            failures.push(format!(
                "QPS dropped more than {:.0}%",
                MAX_QPS_DROP * 100.0
            ));
        }
        if let Some(d) = &dist_summary {
            // Wire-cost clause: the per-AP block cache and the frontier
            // prefetch are what keep bytes/query low; regressing either
            // shows up here long before it shows up as a QPS cliff.
            let baseline_bytes = number_field(&text, "mean_bytes_per_query")
                .unwrap_or_else(|| panic!("no \"mean_bytes_per_query\" in {baseline_path}"));
            let ceiling = baseline_bytes * (1.0 + MAX_BYTES_GROWTH);
            println!(
                "perf gate: measured {:.1} bytes/query vs baseline {baseline_bytes:.1} \
                 (ceiling {ceiling:.1} = baseline + {:.0}%)",
                d.mean_bytes_per_query,
                MAX_BYTES_GROWTH * 100.0
            );
            if d.mean_bytes_per_query > ceiling {
                failures.push(format!(
                    "bytes/query grew more than {:.0}%",
                    MAX_BYTES_GROWTH * 100.0
                ));
            }
            // Scaling clause: adding APs must not cost throughput. This is
            // the cliff the shared block cache and batched prefetch fixed —
            // serving must not be slower at the widest pool than at one
            // worker (beyond measurement noise).
            let first = rows.first().expect("at least one run");
            let last = rows.last().expect("at least one run");
            let scale = last.qps / first.qps;
            println!(
                "perf gate: scaling {} -> {} workers: {:.1} -> {:.1} QPS ({scale:.2}x, \
                 floor {:.2}x)",
                first.workers,
                last.workers,
                first.qps,
                last.qps,
                1.0 - MAX_SCALING_NOISE
            );
            if scale < 1.0 - MAX_SCALING_NOISE {
                failures.push(format!(
                    "QPS fell {:.0}% from {} to {} workers — the multi-AP cliff is back",
                    (1.0 - scale) * 100.0,
                    first.workers,
                    last.workers
                ));
            }
        }
        if !failures.is_empty() {
            for f in &failures {
                println!("perf gate: FAIL — {f}");
            }
            std::process::exit(1);
        }
        println!("perf gate: PASS");
    }
}
