//! Serving-throughput harness for the concurrent query engine (`rtr-serve`).
//!
//! Replays a deterministic QLog query workload through a [`ServeEngine`]
//! worker pool at each configured worker count and reports QPS and latency
//! quantiles, both human-readable and as machine-readable JSON
//! (`BENCH_throughput.json` by default) for the CI perf gate and the
//! cross-PR trajectory.
//!
//! ```text
//! throughput [--workers 1,2,4,8] [--queries N] [--k K] [--epsilon E]
//!            [--skew S] [--mixed] [--cache CAPACITY] [--json PATH]
//!            [--backend local|distributed] [--gps N]
//!            [--check bench/baseline.json]
//! ```
//!
//! Without `--check`, the workload follows `RTR_SCALE` / `RTR_SEED` like
//! every other bench binary. With `--check PATH`, the binary ignores the
//! environment and runs the **canonical gate workload** (small QLog, seed
//! 2013, 1000 queries, cache off), then fails — exit code 1 — if the
//! measured best QPS falls more than 30% below the committed baseline's
//! `qps` field, so the gate runs identically locally and in CI. Combined
//! with `--backend distributed`, the same canonical workload runs through
//! the AP/GP backend and the gate additionally fails if mean bytes/query
//! regresses past the baseline's `mean_bytes_per_query` or if QPS falls
//! off from the single-worker pass to the widest one (the multi-AP
//! throughput cliff).
//!
//! With `--skew S`, the workload switches to a **Zipf-repeat stream**: a
//! hot pool of query nodes sampled with exponent `S` (real logs are
//! head-heavy — the hot queries repeat constantly). In this mode every
//! worker count is measured twice, cache **off** then cache **on**, the
//! two result streams are asserted bit-identical, and the JSON gains
//! cached QPS, hit rate, and speedup columns.
//!
//! With `--mixed`, the workload replays a **seeded heterogeneous request
//! mix** through one pool: F-Rank, T-Rank, RTR, and RTR+ (two β values),
//! single- and multi-node queries, two k values — the traffic shape the
//! per-request `QueryRequest` API exists for. Every worker count is
//! measured cache-off then cache-on, both asserted bit-identical to the
//! serial reference, and the JSON gains a `mixed_runs` section.
//!
//! With `--backend distributed` (plus `--gps N`, default 4), the uniform
//! workload is served by the **AP/GP execution backend**: the graph is
//! striped across N graph-processor threads and every worker acts as an
//! active processor fetching node blocks on demand. The result stream is
//! asserted bit-identical to the serial local reference (the backends
//! mirror each other exactly), and the JSON gains a `distributed` section
//! with the wire-cost observables of the paper's Fig. 12: mean payload
//! bytes per query, mean fetch rounds, and active-set size percentiles.
//! In this mode the artifact defaults to `BENCH_throughput_dist.json` so
//! the local trajectory artifact is never clobbered by a distributed run.
//!
//! All modes report latency **split into queue-wait and compute**
//! percentiles alongside the end-to-end numbers: under load, queue-wait
//! growing while compute stays flat is the saturation signature.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rtr_bench::json::{number, number_field};
use rtr_bench::{percentile, qlog, seed, Scale};
use rtr_core::{Measure, RankParams};
use rtr_datagen::{QLog, QLogConfig, Zipf};
use rtr_graph::{Graph, NodeId};
use rtr_serve::{
    run_serial_requests, Backend, BackendKind, QueryOutput, QueryRequest, QueryResponse,
    ServeConfig, ServeEngine,
};
use rtr_topk::TopKConfig;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Allowed QPS regression against the committed baseline before the gate
/// fails (the ISSUE's ">30% drop" contract).
const MAX_QPS_DROP: f64 = 0.30;

/// Allowed growth in distributed mean bytes/query against the committed
/// baseline. The canonical workload is fully deterministic (single-worker
/// aggregate), so any real increase means the block cache or the prefetch
/// stopped doing its job; the slack only absorbs future intentional
/// protocol tweaks small enough not to matter.
const MAX_BYTES_GROWTH: f64 = 0.25;

/// Measurement-noise allowance for the distributed scaling clause: QPS at
/// the widest worker count must stay within this fraction of the
/// single-worker QPS (anything steeper is the multi-AP throughput cliff
/// this gate exists to catch, not scheduler jitter).
const MAX_SCALING_NOISE: f64 = 0.15;

/// Size of the hot query pool the `--skew` workload draws from: the head
/// of the shuffled phrase pool. Production logs concentrate traffic on a
/// small popular set; a bounded pool models that while keeping the tail
/// (high Zipf ranks) genuinely cold.
const SKEW_HOT_POOL: usize = 256;

/// Default cache capacity when a cached run is requested without an
/// explicit `--cache` (entries; a cached top-10 ranking is a few hundred
/// bytes).
const DEFAULT_CACHE_CAPACITY: usize = 4096;

struct Args {
    workers: Vec<usize>,
    queries: Option<usize>,
    k: usize,
    epsilon: f64,
    out: String,
    check: Option<String>,
    skew: Option<f64>,
    mixed: bool,
    cache: usize,
    /// Execution backend for the uniform workload (`--backend`).
    distributed: bool,
    /// Graph processors for the distributed backend (`--gps`).
    gps: usize,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            workers: vec![1, 2, 4, 8],
            queries: None,
            k: 10,
            epsilon: 0.01,
            out: "BENCH_throughput.json".to_owned(),
            check: None,
            skew: None,
            mixed: false,
            cache: 0,
            distributed: false,
            gps: 4,
        }
    }
}

impl Args {
    /// Query count: explicit `--queries`, else 2000 for the skewed workload
    /// (repeats need volume to show), 600 for the mixed one (the exact
    /// measures are O(|V|) per query), and 200 for the uniform one.
    fn query_count(&self) -> usize {
        self.queries.unwrap_or(if self.skew.is_some() {
            2000
        } else if self.mixed {
            600
        } else {
            200
        })
    }

    /// Cache capacity for cached runs: explicit `--cache`, else the default.
    fn cache_capacity(&self) -> usize {
        if self.cache > 0 {
            self.cache
        } else {
            DEFAULT_CACHE_CAPACITY
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--workers" => {
                args.workers = value("--workers")
                    .split(',')
                    .map(|w| w.trim().parse().expect("worker count"))
                    .collect();
                assert!(!args.workers.is_empty(), "--workers needs at least one");
            }
            "--queries" => args.queries = Some(value("--queries").parse().expect("query count")),
            "--k" => args.k = value("--k").parse().expect("k"),
            "--epsilon" => args.epsilon = value("--epsilon").parse().expect("epsilon"),
            // --json is the canonical artifact-path flag; --out remains as
            // an alias for older invocations.
            "--json" | "--out" => args.out = value(flag.as_str()),
            "--check" => args.check = Some(value("--check")),
            "--skew" => {
                let s: f64 = value("--skew").parse().expect("skew exponent");
                assert!(s > 0.0 && s.is_finite(), "--skew must be positive");
                args.skew = Some(s);
            }
            "--mixed" => args.mixed = true,
            "--cache" => args.cache = value("--cache").parse().expect("cache capacity"),
            "--backend" => {
                args.distributed = match value("--backend").as_str() {
                    "local" => false,
                    "distributed" => true,
                    other => panic!("unknown backend '{other}' (local|distributed)"),
                }
            }
            "--gps" => {
                args.gps = value("--gps").parse().expect("gp count");
                assert!(args.gps > 0, "--gps must be at least 1");
            }
            "--help" | "-h" => {
                eprintln!(
                    "throughput [--workers 1,2,4,8] [--queries N] [--k K] \
                     [--epsilon E] [--skew S] [--mixed] [--cache CAPACITY] \
                     [--backend local|distributed] [--gps N] \
                     [--json PATH] [--check BASELINE_JSON]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag '{other}' (try --help)"),
        }
    }
    assert!(
        !(args.mixed && args.skew.is_some()),
        "--mixed and --skew are separate workloads; pick one"
    );
    assert!(
        !(args.distributed && (args.mixed || args.skew.is_some())),
        "--backend distributed measures the uniform workload (the \
         skew/mixed studies stay on the cold local path)"
    );
    // The distributed mode writes a different document shape; without an
    // explicit --json it must not clobber the local trajectory artifact.
    if args.distributed && args.out == Args::default().out {
        args.out = "BENCH_throughput_dist.json".to_owned();
    }
    args
}

/// The fixed-seed workload the CI gate replays (environment-independent:
/// `RTR_SCALE` / `RTR_SEED` are ignored so local and CI runs are the same
/// measurement). The gate always measures the cold path — result cache off
/// — so a cache can never mask a compute regression. The backend choice
/// survives into the gate: `--backend distributed --check
/// bench/baseline_dist.json` replays the same canonical workload through
/// the AP/GP backend and additionally gates the wire cost.
fn canonical_gate_args(parsed: &Args) -> (Args, QLog) {
    let args = Args {
        // The distributed gate measures the scaling clause's two
        // endpoints: a wide 8-AP pool must serve at least as fast as one
        // AP (this was false before the shared block cache — every added
        // worker re-fetched the same hot blocks). Intermediate counts are
        // left out of the canonical run: on small CI machines they only
        // measure core oversubscription, not the cliff.
        workers: if parsed.distributed {
            vec![1, 8]
        } else {
            vec![1, 2, 4]
        },
        queries: Some(1000),
        check: parsed.check.clone(),
        out: parsed.out.clone(),
        distributed: parsed.distributed,
        gps: parsed.gps,
        ..Args::default()
    };
    eprintln!(
        "[throughput] check mode: canonical workload (small QLog, seed 2013, {} backend)",
        if args.distributed {
            "distributed"
        } else {
            "local"
        }
    );
    (args, QLog::generate(&QLogConfig::small(), 2013))
}

/// Non-dangling phrase nodes, deterministically shuffled: the query pool.
fn query_pool(log: &QLog, seed: u64) -> Vec<NodeId> {
    let g = &log.graph;
    let mut pool: Vec<NodeId> = log
        .phrases
        .iter()
        .copied()
        .filter(|&v| !g.is_dangling(v))
        .collect();
    assert!(!pool.is_empty(), "QLog has no usable phrase queries");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    pool.shuffle(&mut rng);
    pool
}

/// Deterministic uniform query stream: the shuffled pool cycled up to `n`
/// (real logs repeat popular phrases; cycling models that while keeping
/// the stream deterministic).
fn sample_queries(log: &QLog, n: usize, seed: u64) -> Vec<NodeId> {
    let pool = query_pool(log, seed);
    (0..n).map(|i| pool[i % pool.len()]).collect()
}

/// Deterministic Zipf-repeat query stream: rank `r` of the hot pool is
/// drawn with probability ∝ 1/(r+1)^s, so the head repeats heavily and the
/// tail stays cold — the skewed-traffic shape `rtr-datagen` models for
/// clicks, applied to the queries themselves.
fn sample_queries_zipf(log: &QLog, n: usize, seed: u64, s: f64) -> (Vec<NodeId>, usize) {
    let pool = query_pool(log, seed);
    let hot = &pool[..pool.len().min(SKEW_HOT_POOL)];
    let zipf = Zipf::new(hot.len(), s);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5e3a);
    let queries = (0..n).map(|_| hot[zipf.sample(&mut rng)]).collect();
    (queries, hot.len())
}

/// Deterministic heterogeneous request mix: hot-pool Zipf query nodes
/// (exponent 1.0 so the cache has a head to hold) crossed with the measure
/// space — F-Rank, T-Rank, RTR, RTR+ at two β values — ~10% two-node
/// queries, and two k values. The shape one `QueryRequest`-serving pool
/// handles that the old per-engine API could not.
fn sample_requests_mixed(log: &QLog, n: usize, seed: u64) -> Vec<QueryRequest> {
    let pool = query_pool(log, seed);
    let hot = &pool[..pool.len().min(SKEW_HOT_POOL)];
    let zipf = Zipf::new(hot.len(), 1.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6d17);
    (0..n)
        .map(|_| {
            let node = hot[zipf.sample(&mut rng)];
            let mut request = if rng.gen_bool(0.1) {
                let other = hot[zipf.sample(&mut rng)];
                QueryRequest::nodes(&[node, other])
            } else {
                QueryRequest::node(node)
            };
            request = match rng.gen_range(0..5) {
                0 => request.with_measure(Measure::F),
                1 => request.with_measure(Measure::T),
                2 => request.with_measure(Measure::RtrPlus { beta: 0.3 }),
                3 => request.with_measure(Measure::RtrPlus { beta: 0.7 }),
                _ => request, // RoundTripRank
            };
            if rng.gen_bool(0.5) {
                request = request.with_k(5);
            }
            request
        })
        .collect()
}

#[derive(Clone, Copy)]
struct RunRow {
    workers: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    p50_queue_ms: f64,
    p99_queue_ms: f64,
    p50_compute_ms: f64,
    p99_compute_ms: f64,
    wall_ms: f64,
    /// Steady-state cache hit rate over the measured pass (cached runs).
    hit_rate: Option<f64>,
}

impl RunRow {
    /// Percentile rows from per-query `(queue_wait, compute)` pairs.
    fn measure(
        workers: usize,
        wall: Duration,
        splits: &[(Duration, Duration)],
        hit_rate: Option<f64>,
    ) -> RunRow {
        let ms = |d: &Duration| d.as_secs_f64() * 1e3;
        let queue: Vec<f64> = splits.iter().map(|(q, _)| ms(q)).collect();
        let compute: Vec<f64> = splits.iter().map(|(_, c)| ms(c)).collect();
        let total: Vec<f64> = splits.iter().map(|(q, c)| ms(q) + ms(c)).collect();
        RunRow {
            workers,
            qps: splits.len() as f64 / wall.as_secs_f64(),
            p50_ms: percentile(&total, 50.0),
            p99_ms: percentile(&total, 99.0),
            p50_queue_ms: percentile(&queue, 50.0),
            p99_queue_ms: percentile(&queue, 99.0),
            p50_compute_ms: percentile(&compute, 50.0),
            p99_compute_ms: percentile(&compute, 99.0),
            wall_ms: wall.as_secs_f64() * 1e3,
            hit_rate,
        }
    }
}

struct Measured {
    row: RunRow,
    outputs: Vec<QueryOutput>,
}

fn run_at(g: &Arc<Graph>, config: ServeConfig, queries: &[NodeId], workers: usize) -> Measured {
    let engine = ServeEngine::start(Arc::clone(g), config.with_workers(workers));
    // Warmup: populate every worker's workspace (and the OS scheduler)
    // before the measured pass.
    let warm = queries.len().min(workers.max(1) * 4);
    let _ = engine.run_batch(&queries[..warm]);
    let cache_mark = engine.cache_stats();

    let started = Instant::now();
    let outputs = engine.run_batch(queries);
    let wall = started.elapsed();
    let hit_rate = engine
        .cache_stats()
        .map(|now| cache_mark.map_or(now, |mark| now.since(&mark)).hit_rate());

    let mut splits = Vec::with_capacity(outputs.len());
    for out in &outputs {
        out.result
            .as_ref()
            .unwrap_or_else(|e| panic!("query {:?} failed: {e}", out.query));
        splits.push((out.queue_wait, out.compute));
    }
    Measured {
        row: RunRow::measure(workers, wall, &splits, hit_rate),
        outputs,
    }
}

/// [`run_at`] for a heterogeneous request workload.
fn run_requests_at(
    g: &Arc<Graph>,
    config: ServeConfig,
    requests: &[QueryRequest],
    workers: usize,
) -> (RunRow, Vec<QueryResponse>) {
    let engine = ServeEngine::start(Arc::clone(g), config.with_workers(workers));
    let warm = requests.len().min(workers.max(1) * 4);
    let _ = engine.run_requests(&requests[..warm]);
    let cache_mark = engine.cache_stats();

    let started = Instant::now();
    let responses = engine.run_requests(requests);
    let wall = started.elapsed();
    let hit_rate = engine
        .cache_stats()
        .map(|now| cache_mark.map_or(now, |mark| now.since(&mark)).hit_rate());

    let mut splits = Vec::with_capacity(responses.len());
    for r in &responses {
        r.result
            .as_ref()
            .unwrap_or_else(|e| panic!("request {:?} failed: {e}", r.request.query.nodes()));
        splits.push((r.queue_wait, r.compute));
    }
    (RunRow::measure(workers, wall, &splits, hit_rate), responses)
}

/// The skewed workload's correctness clause: cached serving must be
/// bit-identical to uncached serving, query by query.
fn assert_identical(uncached: &[QueryOutput], cached: &[QueryOutput], workers: usize) {
    assert_eq!(uncached.len(), cached.len());
    for (u, c) in uncached.iter().zip(cached) {
        let (u, c) = (u.result.as_ref().unwrap(), c.result.as_ref().unwrap());
        assert_eq!(
            u.ranking, c.ranking,
            "cached ranking diverged at {workers} workers"
        );
        assert_eq!(
            u.bounds, c.bounds,
            "cached bounds diverged at {workers} workers"
        );
    }
}

/// The mixed workload's correctness clause: pooled serving (cache off or
/// on) must be bit-identical to the serial reference, request by request.
fn assert_responses_identical(got: &[QueryResponse], want: &[QueryResponse], label: &str) {
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        let (g, w) = (g.result.as_ref().unwrap(), w.result.as_ref().unwrap());
        assert_eq!(g.ranking, w.ranking, "ranking diverged: {label}");
        assert_eq!(g.bounds, w.bounds, "bounds diverged: {label}");
    }
}

struct SkewRow {
    uncached: RunRow,
    cached: RunRow,
}

impl SkewRow {
    fn speedup(&self) -> f64 {
        self.cached.qps / self.uncached.qps
    }
}

/// Wire-cost aggregates of a distributed-backend run (the paper's Fig. 12
/// observables, summarized over the measured pass). Cold wire fetches and
/// block-cache hits are reported separately: with each worker's block
/// cache surviving across queries, most of the working set is resident and
/// repeat traffic crosses no wire at all.
struct DistSummary {
    gps: usize,
    mean_bytes_per_query: f64,
    mean_fetch_requests: f64,
    mean_blocks_fetched: f64,
    mean_blocks_prefetched: f64,
    mean_blocks_from_cache: f64,
    active_bytes_p50: f64,
    active_bytes_p99: f64,
    active_nodes_p50: f64,
    active_nodes_p99: f64,
}

impl DistSummary {
    /// Aggregate the per-response [`rtr_serve::DistributedStats`]; every
    /// response in the uniform RTR workload must be genuinely distributed.
    fn collect(gps: usize, responses: &[QueryResponse]) -> DistSummary {
        let mut bytes = Vec::with_capacity(responses.len());
        let mut fetches = Vec::with_capacity(responses.len());
        let mut fetched = Vec::with_capacity(responses.len());
        let mut prefetched = Vec::with_capacity(responses.len());
        let mut from_cache = Vec::with_capacity(responses.len());
        let mut active_bytes = Vec::with_capacity(responses.len());
        let mut active_nodes = Vec::with_capacity(responses.len());
        for r in responses {
            assert_eq!(
                r.backend,
                BackendKind::Distributed,
                "uniform RTR workload must run distributed"
            );
            let s = r.distributed.expect("distributed stats");
            // A warm block cache legitimately serves a whole query with
            // zero wire bytes; the per-query invariant is the touched-set
            // accounting, not a wire-cost floor.
            assert!(s.active_nodes > 0, "a distributed run touched nothing?");
            assert_eq!(
                s.blocks_fetched + s.blocks_from_cache,
                s.active_nodes,
                "every touched block is classified cold or cached"
            );
            bytes.push(s.bytes_transferred as f64);
            fetches.push(s.fetch_requests as f64);
            fetched.push(s.blocks_fetched as f64);
            prefetched.push(s.blocks_prefetched as f64);
            from_cache.push(s.blocks_from_cache as f64);
            active_bytes.push(s.active_bytes as f64);
            active_nodes.push(s.active_nodes as f64);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let summary = DistSummary {
            gps,
            mean_bytes_per_query: mean(&bytes),
            mean_fetch_requests: mean(&fetches),
            mean_blocks_fetched: mean(&fetched),
            mean_blocks_prefetched: mean(&prefetched),
            mean_blocks_from_cache: mean(&from_cache),
            active_bytes_p50: percentile(&active_bytes, 50.0),
            active_bytes_p99: percentile(&active_bytes, 99.0),
            active_nodes_p50: percentile(&active_nodes, 50.0),
            active_nodes_p99: percentile(&active_nodes, 99.0),
        };
        // The pass as a whole starts cold, so some wire was crossed even
        // if most queries were then served from resident blocks.
        assert!(
            summary.mean_bytes_per_query > 0.0,
            "an entire distributed pass crossed no wire?"
        );
        summary
    }

    fn json(&self) -> String {
        format!(
            "{{ \"gps\": {}, \"mean_bytes_per_query\": {}, \"mean_fetch_requests\": {}, \
             \"mean_blocks_fetched\": {}, \"mean_blocks_prefetched\": {}, \
             \"mean_blocks_from_cache\": {}, \
             \"active_bytes_p50\": {}, \"active_bytes_p99\": {}, \
             \"active_nodes_p50\": {}, \"active_nodes_p99\": {} }}",
            self.gps,
            number(self.mean_bytes_per_query),
            number(self.mean_fetch_requests),
            number(self.mean_blocks_fetched),
            number(self.mean_blocks_prefetched),
            number(self.mean_blocks_from_cache),
            number(self.active_bytes_p50),
            number(self.active_bytes_p99),
            number(self.active_nodes_p50),
            number(self.active_nodes_p99)
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_json(
    path: &str,
    scale_label: &str,
    workload_seed: u64,
    args: &Args,
    g: &Graph,
    rows: &[RunRow],
    skew_rows: &[SkewRow],
    mixed_rows: &[SkewRow],
    dist: Option<&DistSummary>,
) {
    let best = rows
        .iter()
        .max_by(|a, b| a.qps.partial_cmp(&b.qps).expect("NaN qps"))
        .expect("at least one run");
    let run_json = |r: &RunRow| {
        let mut s = format!(
            "{{ \"workers\": {}, \"qps\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \
             \"p50_queue_ms\": {}, \"p99_queue_ms\": {}, \
             \"p50_compute_ms\": {}, \"p99_compute_ms\": {}, \"wall_ms\": {}",
            r.workers,
            number(r.qps),
            number(r.p50_ms),
            number(r.p99_ms),
            number(r.p50_queue_ms),
            number(r.p99_queue_ms),
            number(r.p50_compute_ms),
            number(r.p99_compute_ms),
            number(r.wall_ms)
        );
        if let Some(h) = r.hit_rate {
            s.push_str(&format!(", \"hit_rate\": {}", number(h)));
        }
        s.push_str(" }");
        s
    };
    let paired_runs = |pairs: &[SkewRow]| -> String {
        pairs
            .iter()
            .map(|sr| {
                format!(
                    "    {{ \"workers\": {}, \"uncached\": {}, \"cached\": {}, \"speedup\": {} }}",
                    sr.uncached.workers,
                    run_json(&sr.uncached),
                    run_json(&sr.cached),
                    number(sr.speedup())
                )
            })
            .collect::<Vec<String>>()
            .join(",\n")
    };
    let runs: Vec<String> = rows
        .iter()
        .map(|r| format!("    {}", run_json(r)))
        .collect();
    let mut extra = String::new();
    if let Some(s) = args.skew {
        extra = format!(
            ",\n  \"skew\": {},\n  \"cache_capacity\": {},\n  \"skew_runs\": [\n{}\n  ]",
            number(s),
            args.cache_capacity(),
            paired_runs(skew_rows)
        );
    }
    if args.mixed {
        extra = format!(
            ",\n  \"mixed\": true,\n  \"cache_capacity\": {},\n  \"mixed_runs\": [\n{}\n  ]",
            args.cache_capacity(),
            paired_runs(mixed_rows)
        );
    }
    if let Some(d) = dist {
        extra = format!(",\n  \"distributed\": {}", d.json());
    }
    let backend = if args.distributed {
        "distributed"
    } else {
        "local"
    };
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"scale\": \"{scale_label}\",\n  \"seed\": {},\n  \
         \"backend\": \"{backend}\",\n  \
         \"graph\": {{ \"nodes\": {}, \"edges\": {} }},\n  \"k\": {},\n  \"epsilon\": {},\n  \
         \"queries\": {},\n  \"runs\": [\n{}\n  ],\n  \"best_workers\": {},\n  \"best_qps\": {}{extra}\n}}\n",
        workload_seed,
        g.node_count(),
        g.edge_count(),
        args.k,
        number(args.epsilon),
        args.query_count(),
        runs.join(",\n"),
        best.workers,
        number(best.qps),
    );
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("[throughput] wrote {path}");
}

fn main() {
    let parsed = parse_args();
    let (args, log) = if parsed.check.is_some() {
        canonical_gate_args(&parsed)
    } else {
        (parsed, qlog())
    };
    let scale_label = if args.check.is_some() {
        "gate-small".to_owned()
    } else {
        format!("{:?}", Scale::from_env()).to_lowercase()
    };

    // In check mode the workload is hard-pinned to seed 2013; the JSON
    // must record the seed that actually ran, not the RTR_SEED env.
    let workload_seed = if args.check.is_some() { 2013 } else { seed() };
    let n_queries = args.query_count();
    let (queries, hot_pool) = match args.skew {
        Some(s) => sample_queries_zipf(&log, n_queries, workload_seed, s),
        None if args.mixed => (Vec::new(), 0),
        None => (sample_queries(&log, n_queries, workload_seed), 0),
    };
    let mixed_requests = if args.mixed {
        sample_requests_mixed(&log, n_queries, workload_seed)
    } else {
        Vec::new()
    };
    let g = Arc::new(log.graph);
    let config = ServeConfig {
        workers: 1,
        params: RankParams::default(),
        topk: TopKConfig {
            k: args.k,
            epsilon: args.epsilon,
            ..TopKConfig::default()
        },
        // The gate always measures the cold path; plain runs honor --cache.
        ..ServeConfig::default()
    }
    .with_cache_capacity(if args.check.is_some() { 0 } else { args.cache });

    println!(
        "=== serving throughput: {} queries, K = {}, ε = {} on {} nodes / {} edges ===",
        n_queries,
        args.k,
        args.epsilon,
        g.node_count(),
        g.edge_count()
    );
    let mut rows = Vec::new();
    let mut skew_rows = Vec::new();
    let mut mixed_rows = Vec::new();
    let mut dist_summary: Option<DistSummary> = None;
    if args.distributed {
        println!(
            "--- distributed backend: {} GPs, uniform RTR workload ---",
            args.gps
        );
        let requests: Vec<QueryRequest> = queries.iter().map(|&q| QueryRequest::node(q)).collect();
        // The ground truth every distributed pass must reproduce bit for
        // bit: the serial local reference (the backends mirror exactly).
        let serial = run_serial_requests(&g, &config, &requests);
        let dconfig = config.with_backend(Backend::Distributed { gps: args.gps });
        println!(
            "{:>8} {:>12} {:>10} {:>10} {:>13} {:>9} {:>9} {:>9}",
            "workers", "QPS", "p50/ms", "p99/ms", "KB/query", "fetches", "cold", "cached"
        );
        for &workers in &args.workers {
            let (row, responses) = run_requests_at(&g, dconfig, &requests, workers);
            assert_responses_identical(
                &responses,
                &serial,
                &format!("{workers} workers, distributed vs serial local"),
            );
            let d = DistSummary::collect(args.gps, &responses);
            println!(
                "{:>8} {:>12.1} {:>10.3} {:>10.3} {:>13.2} {:>9.1} {:>9.1} {:>9.1}",
                row.workers,
                row.qps,
                row.p50_ms,
                row.p99_ms,
                d.mean_bytes_per_query / 1024.0,
                d.mean_fetch_requests,
                d.mean_blocks_fetched,
                d.mean_blocks_from_cache
            );
            rows.push(row);
            // Wire cost depends on how warm each worker's block cache gets,
            // so it varies with the worker count; keep the single-worker
            // pass (one cache sees the whole stream — fully deterministic)
            // as the canonical aggregate.
            if dist_summary.is_none() {
                dist_summary = Some(d);
            }
        }
    } else if args.mixed {
        println!(
            "--- mixed-request workload: F/T/RTR/RTR+β, 1-2 nodes, k ∈ {{5, {}}}, cache capacity {} ---",
            args.k,
            args.cache_capacity()
        );
        // The ground truth every measured pass must reproduce bit for bit.
        let serial = run_serial_requests(&g, &config, &mixed_requests);
        println!(
            "{:>8} {:>12} {:>12} {:>10} {:>9}",
            "workers", "QPS(off)", "QPS(on)", "hit rate", "speedup"
        );
        for &workers in &args.workers {
            let (off_row, off) =
                run_requests_at(&g, config.with_cache_capacity(0), &mixed_requests, workers);
            let (on_row, on) = run_requests_at(
                &g,
                config.with_cache_capacity(args.cache_capacity()),
                &mixed_requests,
                workers,
            );
            assert_responses_identical(&off, &serial, &format!("{workers} workers, cache off"));
            assert_responses_identical(&on, &serial, &format!("{workers} workers, cache on"));
            let sr = SkewRow {
                uncached: off_row,
                cached: on_row,
            };
            println!(
                "{:>8} {:>12.1} {:>12.1} {:>9.1}% {:>8.2}x",
                workers,
                sr.uncached.qps,
                sr.cached.qps,
                sr.cached.hit_rate.unwrap_or(0.0) * 100.0,
                sr.speedup()
            );
            // The uncached run doubles as this worker count's plain row, so
            // best_qps keeps its cold-path meaning in mixed mode too.
            rows.push(RunRow {
                hit_rate: None,
                ..sr.uncached
            });
            mixed_rows.push(sr);
        }
    } else if let Some(s) = args.skew {
        println!(
            "--- Zipf-repeat workload: s = {s}, hot pool {hot_pool}, cache capacity {} ---",
            args.cache_capacity()
        );
        println!(
            "{:>8} {:>12} {:>12} {:>10} {:>9}",
            "workers", "QPS(off)", "QPS(on)", "hit rate", "speedup"
        );
        for &workers in &args.workers {
            let uncached = run_at(&g, config.with_cache_capacity(0), &queries, workers);
            let cached = run_at(
                &g,
                config.with_cache_capacity(args.cache_capacity()),
                &queries,
                workers,
            );
            assert_identical(&uncached.outputs, &cached.outputs, workers);
            let sr = SkewRow {
                uncached: uncached.row,
                cached: cached.row,
            };
            println!(
                "{:>8} {:>12.1} {:>12.1} {:>9.1}% {:>8.2}x",
                workers,
                sr.uncached.qps,
                sr.cached.qps,
                sr.cached.hit_rate.unwrap_or(0.0) * 100.0,
                sr.speedup()
            );
            // The uncached run doubles as this worker count's plain row, so
            // best_qps keeps its cold-path meaning in skew mode too.
            rows.push(RunRow {
                hit_rate: None,
                ..sr.uncached
            });
            skew_rows.push(sr);
        }
    } else {
        println!(
            "{:>8} {:>12} {:>10} {:>10} {:>10}",
            "workers", "QPS", "p50/ms", "p99/ms", "wall/ms"
        );
        for &workers in &args.workers {
            let m = run_at(&g, config, &queries, workers);
            let row = m.row;
            println!(
                "{:>8} {:>12.1} {:>10.3} {:>10.3} {:>10.1}",
                row.workers, row.qps, row.p50_ms, row.p99_ms, row.wall_ms
            );
            rows.push(row);
        }
    }
    emit_json(
        &args.out,
        &scale_label,
        workload_seed,
        &args,
        &g,
        &rows,
        &skew_rows,
        &mixed_rows,
        dist_summary.as_ref(),
    );

    if let Some(baseline_path) = &args.check {
        let text = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("reading baseline {baseline_path}: {e}"));
        let baseline_qps =
            number_field(&text, "qps").unwrap_or_else(|| panic!("no \"qps\" in {baseline_path}"));
        let measured = rows.iter().map(|r| r.qps).fold(f64::NEG_INFINITY, f64::max);
        let floor = baseline_qps * (1.0 - MAX_QPS_DROP);
        let mut failures = Vec::new();
        println!(
            "\nperf gate: measured best {measured:.1} QPS vs baseline {baseline_qps:.1} \
             (floor {floor:.1} = baseline - {:.0}%)",
            MAX_QPS_DROP * 100.0
        );
        if measured < floor {
            failures.push(format!(
                "QPS dropped more than {:.0}%",
                MAX_QPS_DROP * 100.0
            ));
        }
        if let Some(d) = &dist_summary {
            // Wire-cost clause: the per-AP block cache and the frontier
            // prefetch are what keep bytes/query low; regressing either
            // shows up here long before it shows up as a QPS cliff.
            let baseline_bytes = number_field(&text, "mean_bytes_per_query")
                .unwrap_or_else(|| panic!("no \"mean_bytes_per_query\" in {baseline_path}"));
            let ceiling = baseline_bytes * (1.0 + MAX_BYTES_GROWTH);
            println!(
                "perf gate: measured {:.1} bytes/query vs baseline {baseline_bytes:.1} \
                 (ceiling {ceiling:.1} = baseline + {:.0}%)",
                d.mean_bytes_per_query,
                MAX_BYTES_GROWTH * 100.0
            );
            if d.mean_bytes_per_query > ceiling {
                failures.push(format!(
                    "bytes/query grew more than {:.0}%",
                    MAX_BYTES_GROWTH * 100.0
                ));
            }
            // Scaling clause: adding APs must not cost throughput. This is
            // the cliff the shared block cache and batched prefetch fixed —
            // serving must not be slower at the widest pool than at one
            // worker (beyond measurement noise).
            let first = rows.first().expect("at least one run");
            let last = rows.last().expect("at least one run");
            let scale = last.qps / first.qps;
            println!(
                "perf gate: scaling {} -> {} workers: {:.1} -> {:.1} QPS ({scale:.2}x, \
                 floor {:.2}x)",
                first.workers,
                last.workers,
                first.qps,
                last.qps,
                1.0 - MAX_SCALING_NOISE
            );
            if scale < 1.0 - MAX_SCALING_NOISE {
                failures.push(format!(
                    "QPS fell {:.0}% from {} to {} workers — the multi-AP cliff is back",
                    (1.0 - scale) * 100.0,
                    first.workers,
                    last.workers
                ));
            }
        }
        if !failures.is_empty() {
            for f in &failures {
                println!("perf gate: FAIL — {f}");
            }
            std::process::exit(1);
        }
        println!("perf gate: PASS");
    }
}
