//! Serving-throughput harness for the concurrent query engine (`rtr-serve`).
//!
//! Replays a deterministic QLog query workload through a [`ServeEngine`]
//! worker pool at each configured worker count and reports QPS and latency
//! quantiles, both human-readable and as machine-readable JSON
//! (`BENCH_throughput.json` by default) for the CI perf gate and the
//! cross-PR trajectory.
//!
//! ```text
//! throughput [--workers 1,2,4,8] [--queries N] [--k K] [--epsilon E]
//!            [--out PATH] [--check bench/baseline.json]
//! ```
//!
//! Without `--check`, the workload follows `RTR_SCALE` / `RTR_SEED` like
//! every other bench binary. With `--check PATH`, the binary ignores the
//! environment and runs the **canonical gate workload** (small QLog, seed
//! 2013, 1000 queries, workers {1, 2, 4}), then fails — exit code 1 — if
//! the measured best QPS falls more than 30% below the committed
//! baseline's `qps` field, so the gate runs identically locally and in CI.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rtr_bench::json::{number, number_field};
use rtr_bench::{percentile, qlog, seed, Scale};
use rtr_core::RankParams;
use rtr_datagen::{QLog, QLogConfig};
use rtr_graph::{Graph, NodeId};
use rtr_serve::{ServeConfig, ServeEngine};
use rtr_topk::TopKConfig;
use std::sync::Arc;
use std::time::Instant;

/// Allowed QPS regression against the committed baseline before the gate
/// fails (the ISSUE's ">30% drop" contract).
const MAX_QPS_DROP: f64 = 0.30;

struct Args {
    workers: Vec<usize>,
    queries: usize,
    k: usize,
    epsilon: f64,
    out: String,
    check: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            workers: vec![1, 2, 4, 8],
            queries: 200,
            k: 10,
            epsilon: 0.01,
            out: "BENCH_throughput.json".to_owned(),
            check: None,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--workers" => {
                args.workers = value("--workers")
                    .split(',')
                    .map(|w| w.trim().parse().expect("worker count"))
                    .collect();
                assert!(!args.workers.is_empty(), "--workers needs at least one");
            }
            "--queries" => args.queries = value("--queries").parse().expect("query count"),
            "--k" => args.k = value("--k").parse().expect("k"),
            "--epsilon" => args.epsilon = value("--epsilon").parse().expect("epsilon"),
            "--out" => args.out = value("--out"),
            "--check" => args.check = Some(value("--check")),
            "--help" | "-h" => {
                eprintln!(
                    "throughput [--workers 1,2,4,8] [--queries N] [--k K] \
                     [--epsilon E] [--out PATH] [--check BASELINE_JSON]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag '{other}' (try --help)"),
        }
    }
    args
}

/// The fixed-seed workload the CI gate replays (environment-independent:
/// `RTR_SCALE` / `RTR_SEED` are ignored so local and CI runs are the same
/// measurement).
fn canonical_gate_args(check: String) -> (Args, QLog) {
    let args = Args {
        workers: vec![1, 2, 4],
        queries: 1000,
        k: 10,
        epsilon: 0.01,
        out: "BENCH_throughput.json".to_owned(),
        check: Some(check),
    };
    eprintln!("[throughput] check mode: canonical workload (small QLog, seed 2013)");
    (args, QLog::generate(&QLogConfig::small(), 2013))
}

/// Deterministic query stream: shuffled non-dangling phrase nodes, cycled
/// up to `n` (real logs repeat popular phrases; cycling models that while
/// keeping the stream deterministic).
fn sample_queries(log: &QLog, n: usize, seed: u64) -> Vec<NodeId> {
    let g = &log.graph;
    let mut pool: Vec<NodeId> = log
        .phrases
        .iter()
        .copied()
        .filter(|&v| !g.is_dangling(v))
        .collect();
    assert!(!pool.is_empty(), "QLog has no usable phrase queries");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    pool.shuffle(&mut rng);
    (0..n).map(|i| pool[i % pool.len()]).collect()
}

struct RunRow {
    workers: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    wall_ms: f64,
}

fn run_at(g: &Arc<Graph>, config: ServeConfig, queries: &[NodeId], workers: usize) -> RunRow {
    let engine = ServeEngine::start(Arc::clone(g), config.with_workers(workers));
    // Warmup: populate every worker's workspace (and the OS scheduler)
    // before the measured pass.
    let warm = queries.len().min(workers.max(1) * 4);
    let _ = engine.run_batch(&queries[..warm]);

    let started = Instant::now();
    let outputs = engine.run_batch(queries);
    let wall = started.elapsed();

    let mut latencies_ms = Vec::with_capacity(outputs.len());
    for out in &outputs {
        out.result
            .as_ref()
            .unwrap_or_else(|e| panic!("query {:?} failed: {e}", out.query));
        latencies_ms.push(out.latency.as_secs_f64() * 1e3);
    }
    RunRow {
        workers,
        qps: queries.len() as f64 / wall.as_secs_f64(),
        p50_ms: percentile(&latencies_ms, 50.0),
        p99_ms: percentile(&latencies_ms, 99.0),
        wall_ms: wall.as_secs_f64() * 1e3,
    }
}

fn emit_json(
    path: &str,
    scale_label: &str,
    workload_seed: u64,
    args: &Args,
    g: &Graph,
    rows: &[RunRow],
) {
    let best = rows
        .iter()
        .max_by(|a, b| a.qps.partial_cmp(&b.qps).expect("NaN qps"))
        .expect("at least one run");
    let runs: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"workers\": {}, \"qps\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \"wall_ms\": {} }}",
                r.workers,
                number(r.qps),
                number(r.p50_ms),
                number(r.p99_ms),
                number(r.wall_ms)
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"scale\": \"{scale_label}\",\n  \"seed\": {},\n  \
         \"graph\": {{ \"nodes\": {}, \"edges\": {} }},\n  \"k\": {},\n  \"epsilon\": {},\n  \
         \"queries\": {},\n  \"runs\": [\n{}\n  ],\n  \"best_workers\": {},\n  \"best_qps\": {}\n}}\n",
        workload_seed,
        g.node_count(),
        g.edge_count(),
        args.k,
        number(args.epsilon),
        args.queries,
        runs.join(",\n"),
        best.workers,
        number(best.qps),
    );
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("[throughput] wrote {path}");
}

fn main() {
    let parsed = parse_args();
    let (args, log) = match parsed.check.clone() {
        Some(baseline) => canonical_gate_args(baseline),
        None => (parsed, qlog()),
    };
    let scale_label = if args.check.is_some() {
        "gate-small".to_owned()
    } else {
        format!("{:?}", Scale::from_env()).to_lowercase()
    };

    // In check mode the workload is hard-pinned to seed 2013; the JSON
    // must record the seed that actually ran, not the RTR_SEED env.
    let workload_seed = if args.check.is_some() { 2013 } else { seed() };
    let queries = sample_queries(&log, args.queries, workload_seed);
    let g = Arc::new(log.graph);
    let config = ServeConfig {
        workers: 1,
        params: RankParams::default(),
        topk: TopKConfig {
            k: args.k,
            epsilon: args.epsilon,
            ..TopKConfig::default()
        },
        scheme: rtr_topk::Scheme::TwoSBound,
    };

    println!(
        "=== serving throughput: {} queries, K = {}, ε = {} on {} nodes / {} edges ===",
        args.queries,
        args.k,
        args.epsilon,
        g.node_count(),
        g.edge_count()
    );
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>10}",
        "workers", "QPS", "p50/ms", "p99/ms", "wall/ms"
    );
    let mut rows = Vec::new();
    for &workers in &args.workers {
        let row = run_at(&g, config, &queries, workers);
        println!(
            "{:>8} {:>12.1} {:>10.3} {:>10.3} {:>10.1}",
            row.workers, row.qps, row.p50_ms, row.p99_ms, row.wall_ms
        );
        rows.push(row);
    }
    emit_json(&args.out, &scale_label, workload_seed, &args, &g, &rows);

    if let Some(baseline_path) = &args.check {
        let text = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("reading baseline {baseline_path}: {e}"));
        let baseline_qps =
            number_field(&text, "qps").unwrap_or_else(|| panic!("no \"qps\" in {baseline_path}"));
        let measured = rows.iter().map(|r| r.qps).fold(f64::NEG_INFINITY, f64::max);
        let floor = baseline_qps * (1.0 - MAX_QPS_DROP);
        println!(
            "\nperf gate: measured best {measured:.1} QPS vs baseline {baseline_qps:.1} \
             (floor {floor:.1} = baseline - {:.0}%)",
            MAX_QPS_DROP * 100.0
        );
        if measured < floor {
            println!(
                "perf gate: FAIL — QPS dropped more than {:.0}%",
                MAX_QPS_DROP * 100.0
            );
            std::process::exit(1);
        }
        println!("perf gate: PASS");
    }
}
