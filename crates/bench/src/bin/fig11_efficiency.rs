//! Reproduces paper Fig. 11: (a) query time of 2SBound vs the Naive /
//! G+S / Gupta / Sarkar schemes under varying slack ε, and (b) 2SBound's
//! approximation quality (NDCG, precision, Kendall's tau vs the exact
//! ranking) under the same slacks. K = 10 throughout, as in the paper.
//!
//! Run with `RTR_SCALE=full` for the paper-scale graphs; the default
//! `small` scale keeps CI fast while preserving the ordering of schemes.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rtr_bench::{bibnet, mean_ci99, seed, test_queries, time_it};
use rtr_core::prelude::*;
use rtr_eval::{kendall_tau, ndcg_vs_exact, topk_overlap};
use rtr_graph::{Graph, NodeId};
use rtr_topk::prelude::*;

fn sample_queries(g: &Graph, n: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Queries must be able to complete round trips; skip dangling nodes.
    let mut pool: Vec<NodeId> = g.nodes().filter(|&v| !g.is_dangling(v)).collect();
    pool.shuffle(&mut rng);
    pool.truncate(n);
    pool
}

fn main() {
    let k = 10usize;
    let n_queries = test_queries(15);
    let epsilons = [0.01, 0.02, 0.03];
    println!("=== Fig. 11: efficiency and approximation quality (K = {k}) ===");
    println!("(queries: {n_queries}; paper used 1000 on the full BibNet)\n");

    let net = bibnet();
    let g = &net.graph;
    let params = RankParams::default();
    let queries = sample_queries(g, n_queries, seed() + 11);

    // Exact rankings once per query (shared ground truth for part (b)).
    eprintln!("[fig11] computing exact rankings (Naive)...");
    let mut naive_times = Vec::new();
    let exact: Vec<Vec<NodeId>> = queries
        .iter()
        .map(|&q| {
            let (res, dt) = time_it(|| NaiveTopK::new(params, k).run(g, q).expect("naive"));
            naive_times.push(dt.as_secs_f64() * 1e3);
            res.ranking
        })
        .collect();
    let (naive_mean, naive_ci) = mean_ci99(&naive_times);

    println!("--- (a) average query time (ms, ±99% CI) ---");
    println!(
        "{:<10} {:>18} {:>18} {:>18}",
        "scheme", "ε=0.01", "ε=0.02", "ε=0.03"
    );
    println!(
        "{:<10} {:>10.1}±{:<6.1} {:>10.1}±{:<6.1} {:>10.1}±{:<6.1}   (ε-independent)",
        "Naive", naive_mean, naive_ci, naive_mean, naive_ci, naive_mean, naive_ci
    );

    let mut two_sbound_quality: Vec<(f64, f64, f64, f64, f64)> = Vec::new();
    for scheme in [
        Scheme::GPlusS,
        Scheme::Gupta,
        Scheme::Sarkar,
        Scheme::TwoSBound,
    ] {
        print!("{:<10}", scheme.name());
        for &eps in &epsilons {
            let cfg = TopKConfig {
                k,
                epsilon: eps,
                ..TopKConfig::default()
            };
            let runner = TwoSBound::with_scheme(params, cfg, scheme);
            let mut times = Vec::new();
            let mut ndcgs = Vec::new();
            let mut precs = Vec::new();
            let mut taus = Vec::new();
            for (i, &q) in queries.iter().enumerate() {
                let (res, dt) = time_it(|| runner.run(g, q).expect("topk"));
                times.push(dt.as_secs_f64() * 1e3);
                ndcgs.push(ndcg_vs_exact(&res.ranking, &exact[i], k));
                precs.push(topk_overlap(&res.ranking, &exact[i], k));
                taus.push(kendall_tau(&res.ranking, &exact[i]));
            }
            let (mean, ci) = mean_ci99(&times);
            print!(" {mean:>10.1}±{ci:<6.1}");
            if scheme == Scheme::TwoSBound {
                let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
                two_sbound_quality.push((eps, avg(&ndcgs), avg(&precs), avg(&taus), mean));
            }
        }
        println!();
    }

    println!("\n--- (b) 2SBound approximation quality vs slack ---");
    println!(
        "{:>6} {:>10} {:>11} {:>14} {:>10}",
        "ε", "NDCG", "precision", "Kendall tau", "time/ms"
    );
    for (eps, ndcg, prec, tau, ms) in &two_sbound_quality {
        println!("{eps:>6.2} {ndcg:>10.3} {prec:>11.3} {tau:>14.3} {ms:>10.1}");
    }
    println!(
        "\nPaper's expected shape: 2SBound ≫ Naive (orders of magnitude), 2–10× \
         faster than G+S/Gupta/Sarkar; quality ≥ 0.9 at moderate ε."
    );
}
