//! Reproduces paper Fig. 8: NDCG@5 of RoundTripRank+ as the specificity
//! bias β sweeps [0, 1], one curve per task.
//!
//! Expected shapes (paper Sect. VI-A2): extreme β (0 or 1) is poor
//! everywhere; optima vary per task — β* ≈ 0.5 for Task 1 (Author),
//! β* < 0.5 for Task 2 (Venue) and Task 3 (Relevant URL), β* > 0.5 for
//! Task 4 (Equivalent search).

use rtr_bench::{bibnet, qlog, seed, test_queries};
use rtr_core::RankParams;
use rtr_eval::tasks::{task1_author, task2_venue, task3_relevant_url, task4_equivalent};
use rtr_eval::{beta_grid, sweep_beta_rtr_plus, TaskInstance};

fn sweep(task: &TaskInstance) {
    let betas = beta_grid();
    let curve = sweep_beta_rtr_plus(task, &betas, 5, RankParams::default());
    println!("\n{} — NDCG@5 vs β:", task.kind.name());
    print!("  β:      ");
    for (b, _) in &curve {
        print!("{b:>7.1}");
    }
    println!();
    print!("  NDCG@5: ");
    for (_, s) in &curve {
        print!("{s:>7.4}");
    }
    println!();
    let (best_b, best_s) = curve.iter().fold((0.0, f64::NEG_INFINITY), |acc, &(b, s)| {
        if s > acc.1 {
            (b, s)
        } else {
            acc
        }
    });
    let at0 = curve.first().expect("grid").1;
    let at1 = curve.last().expect("grid").1;
    println!("  β* = {best_b:.1} (NDCG {best_s:.4}); extremes: β=0 → {at0:.4}, β=1 → {at1:.4}");
}

fn main() {
    let n_test = test_queries(150);
    println!("=== Fig. 8: effect of the specificity bias β ===");
    println!("(test queries per task: {n_test}; paper used 1000)");

    let net = bibnet();
    let qlg = qlog();

    sweep(&task1_author(&net, n_test, 0, seed() + 1).test);
    sweep(&task2_venue(&net, n_test, 0, seed() + 2).test);
    sweep(&task3_relevant_url(&qlg, n_test, 0, seed() + 3).test);
    sweep(&task4_equivalent(&qlg, n_test, 0, seed() + 4).test);

    println!(
        "\nPaper's expected optima: Task 1 β*≈0.5, Task 2 β*<0.5, Task 3 β*<0.5, Task 4 β*>0.5."
    );
}
