//! Reproduces paper Fig. 9: NDCG@{5,10,20} of RoundTripRank+ (β tuned on
//! development queries) against the dual-sensed baselines — TCommute
//! (T = 10), ObjSqrtInv (d = 0.25), and the harmonic/arithmetic means —
//! at their papers' fixed trade-offs.

use rtr_baselines::prelude::*;
use rtr_bench::{bibnet, dev_queries, qlog, seed, test_queries};
use rtr_core::prelude::*;
use rtr_eval::tasks::{task1_author, task2_venue, task3_relevant_url, task4_equivalent};
use rtr_eval::{beta_grid, evaluate_all, format_table, pick_beta, sweep_beta_rtr_plus, TaskSplit};

fn run_task(split: &TaskSplit, ks: &[usize]) {
    // Tune β for RTR+ on the dev split (the baselines stay at their
    // published fixed trade-offs, exactly as in Fig. 9).
    let params = RankParams::default();
    let dev_curve = sweep_beta_rtr_plus(&split.dev, &beta_grid(), 5, params);
    let (beta_star, _) = pick_beta(&dev_curve);

    let measures: Vec<Box<dyn ProximityMeasure>> = vec![
        Box::new(RoundTripRankPlus::new(params, beta_star).expect("valid β")),
        Box::new(TCommute {
            walks: 300,
            ..TCommute::new(seed())
        }),
        Box::new(ObjSqrtInv::new()),
        Box::new(HarmonicMean::new(params)),
        Box::new(ArithmeticMean::new(params)),
    ];
    let evals = evaluate_all(&measures, &split.test, ks);
    println!(
        "{}  (RTR+ dev-tuned β* = {beta_star:.1})",
        split.test.kind.name()
    );
    println!("{}", format_table("", &evals, ks));
    let rtr = &evals[0];
    let runner_up = evals[1..]
        .iter()
        .max_by(|a, b| a.mean_ndcg(5).partial_cmp(&b.mean_ndcg(5)).unwrap())
        .expect("baselines");
    match rtr.ttest_against(runner_up, 5) {
        Some(t) => println!(
            "  t-test RTR+ vs {} @5: Δmean = {:+.4}, t = {:.2}, p = {:.4}\n",
            runner_up.name, t.mean_diff, t.t, t.p
        ),
        None => println!("  t-test degenerate\n"),
    }
}

fn main() {
    let ks = [5usize, 10, 20];
    let n_test = test_queries(150);
    let n_dev = dev_queries(75);
    println!("=== Fig. 9: RoundTripRank+ vs dual-sensed baselines ===");
    println!("(test {n_test} / dev {n_dev} queries per task; paper used 1000 + 1000)\n");

    let net = bibnet();
    let qlg = qlog();

    run_task(&task1_author(&net, n_test, n_dev, seed() + 1), &ks);
    run_task(&task2_venue(&net, n_test, n_dev, seed() + 2), &ks);
    run_task(&task3_relevant_url(&qlg, n_test, n_dev, seed() + 3), &ks);
    run_task(&task4_equivalent(&qlg, n_test, n_dev, seed() + 4), &ks);

    println!("Paper's headline: RTR+ beats the runner-up (TCommute) by ~7% NDCG@5 on average.");
}
