//! Latency and size summaries on the shared `rtr-obs` histogram.
//!
//! The bench binaries used to keep bespoke sort-based percentile helpers
//! per call site; this module replaces them with one [`Summary`] built on
//! the same log-linear [`rtr_obs::Histogram`] the serving layer exports
//! through `ServeEngine::metrics_snapshot`, so a quantile printed by a
//! bench table and a quantile scraped from the metrics endpoint are the
//! same estimator (nearest-rank over log-linear buckets, relative error
//! bounded by `1/`[`rtr_obs::SUB`] ≈ 3.1%). The exact sort-based
//! [`crate::percentile`] survives as the property-test oracle the
//! histogram is checked against.

use rtr_obs::{Histogram, HistogramSnapshot};
use std::time::Duration;

/// A frozen distribution summary: build it from a pass's samples, then
/// read count/mean/quantiles.
///
/// Durations are recorded in nanoseconds ([`Histogram::record_duration`]
/// saturates at `u64::MAX` ns ≈ 584 years); the `_ms` accessors convert
/// back to milliseconds for reporting. `mean` is exact (the histogram
/// keeps the exact sum); quantiles carry the bucket relative-error bound.
///
/// ```
/// use rtr_bench::summary::Summary;
/// let s = Summary::from_values([10, 20, 30, 40]);
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.quantile(50.0), 20.0); // exact below rtr_obs::SUB
/// ```
pub struct Summary {
    snap: HistogramSnapshot,
}

impl Summary {
    /// Summarize raw `u64` samples (byte counts, node counts, ...).
    pub fn from_values(values: impl IntoIterator<Item = u64>) -> Summary {
        let h = Histogram::new(1);
        for v in values {
            h.record(v);
        }
        Summary { snap: h.snapshot() }
    }

    /// Summarize durations, recorded as nanoseconds.
    pub fn from_durations(durations: impl IntoIterator<Item = Duration>) -> Summary {
        let h = Histogram::new(1);
        for d in durations {
            h.record_duration(d);
        }
        Summary { snap: h.snapshot() }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.snap.count()
    }

    /// Exact mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        self.snap.mean()
    }

    /// Nearest-rank quantile (`q` in 0..=100) as `f64`, in the recorded
    /// unit. 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snap.quantile(q) as f64
    }

    /// [`Summary::quantile`] of duration samples, in milliseconds.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.quantile(q) / 1e6
    }

    /// Exact mean of duration samples, in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean() / 1e6
    }

    /// The underlying snapshot, for merging or bucket inspection.
    pub fn snapshot(&self) -> &HistogramSnapshot {
        &self.snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::percentile;

    #[test]
    fn duration_quantiles_track_the_exact_percentile_oracle() {
        // 1..=500 ms: log-linear buckets are coarse up here, so compare
        // against the exact oracle under the documented relative bound.
        let ds: Vec<Duration> = (1..=500).map(Duration::from_millis).collect();
        let s = Summary::from_durations(ds.iter().copied());
        let exact_ms: Vec<f64> = ds.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        assert_eq!(s.count(), 500);
        for q in [50.0, 90.0, 99.0] {
            let want = percentile(&exact_ms, q);
            let got = s.quantile_ms(q);
            // One sample of slack on top of the bucket bound absorbs any
            // rank-rounding disagreement between the two estimators.
            assert!(
                got >= want - 1.0 && got <= (want + 1.0) * (1.0 + 1.0 / rtr_obs::SUB as f64),
                "q{q}: got {got}, oracle {want}"
            );
        }
    }

    #[test]
    fn small_values_are_exact_and_mean_is_exact() {
        let s = Summary::from_values([1, 2, 3, 4, 5]);
        assert_eq!(s.quantile(50.0), 3.0);
        assert_eq!(s.quantile(100.0), 5.0);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn empty_summary_reads_zero() {
        let s = Summary::from_values([]);
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(99.0), 0.0);
        assert_eq!(s.mean(), 0.0);
    }
}
