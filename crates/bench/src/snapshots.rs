//! Shared snapshot measurement used by the Fig. 12 and Fig. 13 binaries.

use crate::{mean_ci99, seed, time_it};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rtr_core::RankParams;
use rtr_distributed::{DistributedTwoSBound, GpCluster};
use rtr_graph::prelude::*;
use rtr_graph::{Graph, NodeId};
use rtr_topk::TopKConfig;

/// Measurements for one snapshot.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotRow {
    /// 1-based snapshot index (the i-th snapshot runs on i GPs).
    pub index: usize,
    /// Snapshot node count.
    pub nodes: usize,
    /// Snapshot resident size in KB.
    pub snapshot_kb: f64,
    /// Mean active-set size in KB (± half-CI).
    pub active_kb: f64,
    /// 99% CI half-width of the active-set size.
    pub active_ci: f64,
    /// Mean query time in ms.
    pub query_ms: f64,
    /// 99% CI half-width of the query time.
    pub query_ci: f64,
}

/// Run distributed 2SBound over prepared cumulative snapshot graphs (the
/// i-th snapshot on i GPs, ε = 0.01, K = 10) and report per-snapshot
/// active-set sizes and query times.
pub fn measure_prepared(snaps: &[Graph], n_queries: usize) -> Vec<SnapshotRow> {
    let params = RankParams::default();
    let cfg = TopKConfig {
        k: 10,
        epsilon: 0.01,
        ..TopKConfig::default()
    };
    let mut rows = Vec::new();
    for (i, sg) in snaps.iter().enumerate() {
        let gps = i + 1;
        let cluster = GpCluster::spawn(sg, gps);
        let mut rng = ChaCha8Rng::seed_from_u64(seed() + 12 + i as u64);
        let mut pool: Vec<NodeId> = sg.nodes().filter(|&v| !sg.is_dangling(v)).collect();
        pool.shuffle(&mut rng);
        pool.truncate(n_queries);

        let runner = DistributedTwoSBound::new(params, cfg);
        let mut ws = rtr_distributed::DistributedWorkspace::new();
        let mut times = Vec::new();
        let mut actives = Vec::new();
        for &q in &pool {
            let ((_, stats), dt) =
                time_it(|| runner.run_with(&cluster, q, &mut ws).expect("query"));
            times.push(dt.as_secs_f64() * 1e3);
            actives.push(stats.active_bytes as f64 / 1024.0);
        }
        let (t_mean, t_ci) = mean_ci99(&times);
        let (a_mean, a_ci) = mean_ci99(&actives);
        rows.push(SnapshotRow {
            index: i + 1,
            nodes: sg.node_count(),
            snapshot_kb: sg.memory_bytes() as f64 / 1024.0,
            active_kb: a_mean,
            active_ci: a_ci,
            query_ms: t_mean,
            query_ci: t_ci,
        });
    }
    rows
}

/// Five cumulative prefix snapshots of `g` under the paper's default growth
/// schedule (valid when node ids are chronological, e.g. QLog).
pub fn prefix_snapshot_graphs(g: &Graph) -> Vec<Graph> {
    GrowthSchedule::paper_default()
        .snapshots(g)
        .into_iter()
        .map(|s| s.graph)
        .collect()
}

/// Convenience: measure prefix snapshots of `g` directly.
pub fn measure_snapshots(g: &Graph, n_queries: usize) -> Vec<SnapshotRow> {
    measure_prepared(&prefix_snapshot_graphs(g), n_queries)
}

/// Print the Fig. 12-style table for a dataset.
pub fn print_snapshot_table(name: &str, rows: &[SnapshotRow]) {
    println!("\n--- {name} snapshots ---");
    println!(
        "{:>4} {:>5} {:>12} {:>14} {:>20} {:>18}",
        "snap", "GPs", "nodes", "snapshot KB", "active set KB ±CI", "query ms ±CI"
    );
    for r in rows {
        println!(
            "{:>4} {:>5} {:>12} {:>14.0} {:>14.1}±{:<5.1} {:>12.2}±{:<5.2}",
            r.index,
            r.index,
            r.nodes,
            r.snapshot_kb,
            r.active_kb,
            r.active_ci,
            r.query_ms,
            r.query_ci
        );
    }
}
