//! Open-loop (Poisson) arrival schedules for load benchmarks.
//!
//! A **closed-loop** harness (submit a batch, wait for it) measures a
//! system that is never overloaded: each in-flight request throttles the
//! next, so latency under saturation is invisible — the classic
//! coordinated-omission trap. An **open-loop** harness fixes the *offered*
//! load instead: arrivals follow a Poisson process of a chosen rate,
//! independent of how fast the system drains them, so queueing delay shows
//! up in full once the offered rate crosses capacity.
//!
//! The schedule here is the textbook construction: inter-arrival gaps are
//! i.i.d. exponential with mean `1/rate` (inverse-CDF sampling), prefix-
//! summed into absolute arrival offsets. Everything is driven by a seeded
//! [`ChaCha8Rng`], so a given `(rate, n, seed)` triple names one exact
//! arrival schedule — reruns and A/B comparisons (two schedulers, one
//! schedule) replay identical load.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

/// Deterministic Poisson arrival schedule: `n` absolute arrival offsets
/// (from an implicit t = 0 start), with exponential inter-arrival gaps of
/// mean `1 / rate_qps` seconds.
///
/// The offsets are strictly increasing (an exponential sample is positive)
/// and, by the law of large numbers, the last offset approaches
/// `n / rate_qps` seconds for large `n` — the `poisson_arrivals`
/// statistical test pins both properties.
///
/// # Panics
/// If `rate_qps` is not a positive finite number.
pub fn poisson_arrivals(rate_qps: f64, n: usize, seed: u64) -> Vec<Duration> {
    assert!(
        rate_qps.is_finite() && rate_qps > 0.0,
        "arrival rate must be positive and finite, got {rate_qps}"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut t = 0.0_f64;
    (0..n)
        .map(|_| {
            // Inverse CDF of Exp(rate): -ln(1 - U) / rate with U ∈ [0, 1).
            // 1 - U ∈ (0, 1], so the log is finite and the gap positive.
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() / rate_qps;
            Duration::from_secs_f64(t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let a = poisson_arrivals(1000.0, 256, 7);
        let b = poisson_arrivals(1000.0, 256, 7);
        assert_eq!(a, b);
        let c = poisson_arrivals(1000.0, 256, 8);
        assert_ne!(a, c, "a different seed is a different schedule");
    }

    #[test]
    fn offsets_strictly_increase() {
        let sched = poisson_arrivals(5000.0, 1000, 2013);
        for pair in sched.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn mean_rate_matches_the_request() {
        // 20k samples at 2k QPS should span ~10s; the sample mean of an
        // exponential concentrates fast (σ/√n ≈ 0.7% here).
        let rate = 2000.0;
        let n = 20_000;
        let sched = poisson_arrivals(rate, n, 2013);
        let span = sched.last().unwrap().as_secs_f64();
        let achieved = n as f64 / span;
        assert!(
            (achieved - rate).abs() / rate < 0.05,
            "offered {rate} QPS but schedule realizes {achieved:.1}"
        );
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_rate_is_rejected() {
        poisson_arrivals(0.0, 1, 1);
    }
}
