//! Criterion micro-benchmarks of the graph substrate: build, snapshot
//! induction, SCC, and the distributed wire encoding — the fixed costs every
//! experiment pays before any ranking happens.

use criterion::{criterion_group, criterion_main, Criterion};
use rtr_datagen::{BibNet, BibNetConfig, QLog, QLogConfig};
use rtr_graph::prelude::*;
use rtr_graph::scc::tarjan_scc;
use rtr_graph::wire::NodeBlock;

fn graph_ops(c: &mut Criterion) {
    let net = BibNet::generate(&BibNetConfig::tiny(), 3);
    let g = &net.graph;

    let mut group = c.benchmark_group("graph_ops");
    group.bench_function("generate_bibnet_tiny", |b| {
        b.iter(|| BibNet::generate(&BibNetConfig::tiny(), 3))
    });
    group.bench_function("generate_qlog_tiny", |b| {
        b.iter(|| QLog::generate(&QLogConfig::tiny(), 3))
    });
    group.bench_function("tarjan_scc", |b| b.iter(|| tarjan_scc(g)));
    group.bench_function("induce_half_subgraph", |b| {
        let keep: Vec<_> = g.nodes().take(g.node_count() / 2).collect();
        b.iter(|| Subgraph::induce(g, &keep))
    });
    group.bench_function("wire_encode_decode_all", |b| {
        b.iter(|| {
            let blocks: Vec<_> = g.nodes().map(|v| NodeBlock::extract(g, v)).collect();
            let bytes = NodeBlock::encode_batch(&blocks);
            NodeBlock::decode_batch(bytes).len()
        })
    });
    group.finish();
}

criterion_group!(benches, graph_ops);
criterion_main!(benches);
