//! Criterion benchmark of the Fig. 11(a) scheme grid: per-query top-K time
//! of Naive / G+S / Gupta / Sarkar / 2SBound at the paper's slacks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtr_core::prelude::*;
use rtr_datagen::{BibNet, BibNetConfig};
use rtr_topk::prelude::*;

fn topk_schemes(c: &mut Criterion) {
    let net = BibNet::generate(&BibNetConfig::tiny(), 7);
    let g = &net.graph;
    let params = RankParams::default();
    let q = net.papers[3];

    let mut group = c.benchmark_group("fig11a_schemes");
    group.bench_function("naive", |b| {
        let runner = NaiveTopK::new(params, 10);
        b.iter(|| runner.run(g, q).expect("naive"))
    });
    for eps in [0.01, 0.03] {
        for scheme in Scheme::all() {
            let cfg = TopKConfig {
                k: 10,
                epsilon: eps,
                ..TopKConfig::default()
            };
            let runner = TwoSBound::with_scheme(params, cfg, scheme);
            group.bench_with_input(
                BenchmarkId::new(scheme.name(), format!("eps={eps}")),
                &runner,
                |b, runner| b.iter(|| runner.run(g, q).expect("topk")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, topk_schemes);
criterion_main!(benches);
