//! Criterion micro-benchmarks of the core ranking engines: the exact
//! fixed-point iterations (the paper's "Naive" per-query cost) and BCA.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtr_core::prelude::*;
use rtr_datagen::{BibNet, BibNetConfig};
use rtr_graph::NodeId;

fn engines(c: &mut Criterion) {
    let net = BibNet::generate(&BibNetConfig::tiny(), 99);
    let g = &net.graph;
    let params = RankParams::default();
    let q = net.papers[0];

    let mut group = c.benchmark_group("engines");
    group.bench_function("frank_iterative", |b| {
        b.iter(|| {
            FRank::new(params)
                .compute(g, &Query::single(q))
                .expect("frank")
        })
    });
    group.bench_function("trank_iterative", |b| {
        b.iter(|| {
            TRank::new(params)
                .compute(g, &Query::single(q))
                .expect("trank")
        })
    });
    group.bench_function("rtr_full", |b| {
        b.iter(|| {
            RoundTripRank::new(params)
                .compute(g, &Query::single(q))
                .expect("rtr")
        })
    });
    for eps in [1e-4, 1e-6] {
        group.bench_with_input(
            BenchmarkId::new("bca_to_residual", format!("{eps:.0e}")),
            &eps,
            |b, &eps| {
                b.iter(|| {
                    let mut bca = rtr_core::bca::Bca::new(g, q, &params).expect("bca");
                    bca.run_to_residual(&mut &*g, eps, 100).expect("in-memory");
                    bca.seen_count()
                })
            },
        );
    }
    group.finish();
}

fn multi_node_queries(c: &mut Criterion) {
    let net = BibNet::generate(&BibNetConfig::tiny(), 99);
    let g = &net.graph;
    let params = RankParams::default();
    let terms: Vec<NodeId> = net.topic_terms(0).into_iter().take(3).collect();

    c.bench_function("rtr_three_term_query", |b| {
        b.iter(|| {
            RoundTripRank::new(params)
                .compute(g, &Query::uniform(&terms))
                .expect("rtr")
        })
    });
}

criterion_group!(benches, engines, multi_node_queries);
criterion_main!(benches);
