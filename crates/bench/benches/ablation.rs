//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! expansion granularity `m` (the paper uses m_f = 100, m_t = 5 and reports
//! insensitivity to small changes) and the Prop. 4 bound vs Gupta's
//! first-arrival bound (bound tightness drives stopping time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtr_core::prelude::*;
use rtr_datagen::{BibNet, BibNetConfig};
use rtr_topk::prelude::*;

fn expansion_granularity(c: &mut Criterion) {
    let net = BibNet::generate(&BibNetConfig::tiny(), 17);
    let g = &net.graph;
    let params = RankParams::default();
    let q = net.papers[5];

    let mut group = c.benchmark_group("ablation_m");
    for (m_f, m_t) in [(25usize, 2usize), (100, 5), (400, 20)] {
        let cfg = TopKConfig {
            k: 10,
            epsilon: 0.01,
            m_f,
            m_t,
            ..TopKConfig::default()
        };
        let runner = TwoSBound::new(params, cfg);
        group.bench_with_input(
            BenchmarkId::new("m", format!("f{m_f}_t{m_t}")),
            &runner,
            |b, runner| b.iter(|| runner.run(g, q).expect("topk")),
        );
    }
    group.finish();
}

fn bound_tightness(c: &mut Criterion) {
    // Prop. 4 vs Gupta on the F side only (T side fixed to two-stage):
    // the per-expansion cost is identical, so any time difference is purely
    // the tighter bound stopping earlier.
    let net = BibNet::generate(&BibNetConfig::tiny(), 17);
    let g = &net.graph;
    let params = RankParams::default();
    let q = net.papers[5];
    let cfg = TopKConfig {
        k: 10,
        epsilon: 0.01,
        ..TopKConfig::default()
    };

    let mut group = c.benchmark_group("ablation_f_bound");
    group.bench_function("prop4_two_stage", |b| {
        let runner = TwoSBound::with_scheme(params, cfg, Scheme::TwoSBound);
        b.iter(|| runner.run(g, q).expect("topk"))
    });
    group.bench_function("gupta_first_arrival", |b| {
        let runner = TwoSBound::with_scheme(params, cfg, Scheme::Gupta);
        b.iter(|| runner.run(g, q).expect("topk"))
    });
    group.finish();
}

criterion_group!(benches, expansion_granularity, bound_tightness);
criterion_main!(benches);
