//! Property suite: cache-key equality tracks output equivalence for the
//! per-request serving API.
//!
//! A result cache is only sound if equal keys imply bit-identical outputs;
//! it is only *useful* if the equivalences traffic actually exhibits —
//! order-permuted multi-node queries, repeated β bit patterns — collapse
//! to one key. Both directions are pinned here:
//!
//! * **soundness**: two requests with equal cache keys serve bit-identical
//!   results (checked by running both through the serial reference);
//! * **usefulness**: permuting a weighted multi-node query never changes
//!   the key (requests canonicalize at construction), while changing any
//!   output-relevant field — measure, β bits, k, α — always does;
//! * **backend-agnosticism**: the execution backend is observability, not
//!   identity — a routing override never changes the key, and (end to end,
//!   at the bottom of this file) an entry computed by the distributed
//!   backend answers a local-routed identical request and vice versa, with
//!   bit-identical rankings. Exactness is what makes the sharing sound:
//!   both backends run mirror-identical engines.

use proptest::prelude::*;
use rtr_core::{Measure, Query, RankParams};
use rtr_graph::toy::fig2_toy;
use rtr_graph::NodeId;
use rtr_serve::{
    run_serial_requests, Backend, BackendKind, QueryRequest, ServeConfig, ServeEngine,
};
use rtr_topk::TopKConfig;
use std::sync::Arc;

// Node universe: the fig2 toy graph's ids (12 nodes).
const NODES: u32 = 12;

// The toy serving defaults every property resolves against.
fn defaults() -> ServeConfig {
    ServeConfig::default().with_topk(TopKConfig {
        k: 4,
        epsilon: 0.0,
        m_f: 4,
        m_t: 2,
        max_expansions: 500,
        ..TopKConfig::default()
    })
}

// A weighted pair list whose nodes are in range and weights positive.
fn pairs_strategy() -> impl Strategy<Value = Vec<(u32, f64)>> {
    proptest::collection::vec((0..NODES, 0.1f64..4.0), 1..5)
}

// The β values the properties draw from: the paper's sweep points.
const BETAS: [f64; 6] = [0.0, 0.25, 0.3, 0.5, 0.7, 1.0];

fn measure_strategy() -> impl Strategy<Value = Measure> {
    (0u8..6).prop_map(|tag| match tag {
        0 => Measure::F,
        1 => Measure::T,
        2 => Measure::Rtr,
        t => Measure::RtrPlus {
            beta: BETAS[t as usize],
        },
    })
}

fn beta_strategy() -> impl Strategy<Value = f64> {
    (0usize..BETAS.len()).prop_map(|i| BETAS[i])
}

fn request(pairs: &[(u32, f64)], measure: Measure, k: usize) -> QueryRequest {
    let weighted: Vec<(NodeId, f64)> = pairs.iter().map(|&(n, w)| (NodeId(n), w)).collect();
    QueryRequest::new(Query::weighted(&weighted).unwrap())
        .with_measure(measure)
        .with_k(k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Usefulness: weight-order normalization. Any permutation of the
    // pair list yields the same request and the same cache key.
    #[test]
    fn permuted_pairs_share_one_key(
        pairs in pairs_strategy(),
        rotation in 0usize..5,
        measure in measure_strategy(),
        k in 0usize..6,
    ) {
        let mut permuted = pairs.clone();
        let by = rotation % permuted.len().max(1);
        permuted.rotate_left(by);
        let a = request(&pairs, measure, k);
        let b = request(&permuted, measure, k);
        prop_assert!(a == b, "canonicalization must erase pair order");
        let cfg = defaults();
        prop_assert_eq!(
            a.resolve(&cfg).cache_key(1),
            b.resolve(&cfg).cache_key(1)
        );
    }

    // Usefulness: every output-relevant request field separates keys.
    #[test]
    fn output_relevant_fields_separate_keys(
        pairs in pairs_strategy(),
        k in 1usize..6,
    ) {
        let cfg = defaults();
        let key = |r: &QueryRequest| r.resolve(&cfg).cache_key(1);
        let base = request(&pairs, Measure::Rtr, k);

        // Measure separates.
        for other in [Measure::F, Measure::T, Measure::RtrPlus { beta: 0.5 }] {
            prop_assert_ne!(key(&base), key(&base.clone().with_measure(other)));
        }
        // k separates.
        prop_assert_ne!(key(&base), key(&base.clone().with_k(k + 1)));
        // α separates.
        prop_assert_ne!(
            key(&base),
            key(&base.clone().with_params(RankParams::with_alpha(0.4)))
        );
        // Epoch separates (a rebuilt graph invalidates by key).
        prop_assert_ne!(base.resolve(&cfg).cache_key(1), base.resolve(&cfg).cache_key(2));
    }

    // Backend-agnosticism: the routing override is observability, not
    // identity — it must never separate cache keys, or local and
    // distributed traffic would stop sharing entries.
    #[test]
    fn backend_route_never_changes_the_key(
        pairs in pairs_strategy(),
        measure in measure_strategy(),
        k in 1usize..6,
    ) {
        let cfg = defaults();
        let base = request(&pairs, measure, k);
        let key = base.resolve(&cfg).cache_key(1);
        for route in [BackendKind::Local, BackendKind::Distributed] {
            prop_assert_eq!(
                base.clone().with_backend(route).resolve(&cfg).cache_key(1),
                key.clone()
            );
        }
    }

    // Usefulness: two RTR+ requests share a key exactly when their β bit
    // patterns agree.
    #[test]
    fn beta_bit_pattern_governs_key_equality(
        pairs in pairs_strategy(),
        b1 in beta_strategy(),
        b2 in beta_strategy(),
    ) {
        let cfg = defaults();
        let a = request(&pairs, Measure::RtrPlus { beta: b1 }, 4).resolve(&cfg).cache_key(1);
        let b = request(&pairs, Measure::RtrPlus { beta: b2 }, 4).resolve(&cfg).cache_key(1);
        prop_assert_eq!(a == b, b1.to_bits() == b2.to_bits());
    }
}

proptest! {
    // Engine runs are comparatively expensive: fewer, smaller cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Soundness: equal cache keys imply bit-identical served results —
    // exercised end to end by permuting a request and serving both forms.
    #[test]
    fn equal_keys_serve_bit_identical_results(
        pairs in pairs_strategy(),
        rotation in 0usize..5,
        measure in measure_strategy(),
        k in 1usize..6,
    ) {
        let mut permuted = pairs.clone();
        let by = rotation % permuted.len().max(1);
        permuted.rotate_left(by);
        let a = request(&pairs, measure, k);
        let b = request(&permuted, measure, k);
        let cfg = defaults();
        prop_assert_eq!(a.resolve(&cfg).cache_key(1), b.resolve(&cfg).cache_key(1));

        let (g, _) = fig2_toy();
        let served = run_serial_requests(&g, &cfg, &[a, b]);
        let (ra, rb) = (
            served[0].result.as_ref().expect("toy query must succeed"),
            served[1].result.as_ref().expect("toy query must succeed"),
        );
        prop_assert_eq!(&ra.ranking, &rb.ranking);
        prop_assert_eq!(&ra.bounds, &rb.bounds);
        prop_assert_eq!(ra.expansions, rb.expansions);
    }

    // Soundness across independently drawn requests: whenever two
    // arbitrary requests happen to collide on a key, their outputs agree
    // bit for bit.
    #[test]
    fn key_collisions_are_always_output_equivalent(
        p1 in pairs_strategy(),
        p2 in pairs_strategy(),
        m1 in measure_strategy(),
        m2 in measure_strategy(),
        k1 in 1usize..4,
        k2 in 1usize..4,
    ) {
        let cfg = defaults();
        let a = request(&p1, m1, k1);
        let b = request(&p2, m2, k2);
        if a.resolve(&cfg).cache_key(1) == b.resolve(&cfg).cache_key(1) {
            let (g, _) = fig2_toy();
            let served = run_serial_requests(&g, &cfg, &[a, b]);
            let (ra, rb) = (
                served[0].result.as_ref().expect("toy query must succeed"),
                served[1].result.as_ref().expect("toy query must succeed"),
            );
            prop_assert_eq!(&ra.ranking, &rb.ranking);
            prop_assert_eq!(&ra.bounds, &rb.bounds);
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-backend cache agnosticism, end to end: an entry computed by one
// execution backend answers an identical request routed to the other.
// ---------------------------------------------------------------------------

/// The mix of request shapes the sharing property must hold for: genuinely
/// distributed (single-node RTR / RTR+) and recorded-fallback (F, T,
/// multi-node) alike.
fn sharing_mix(ids: &rtr_graph::toy::Fig2Ids) -> Vec<QueryRequest> {
    vec![
        QueryRequest::node(ids.t1),
        QueryRequest::node(ids.v1).with_measure(Measure::RtrPlus { beta: 0.7 }),
        QueryRequest::node(ids.t2).with_measure(Measure::F),
        QueryRequest::nodes(&[ids.t1, ids.t2]),
    ]
}

#[test]
fn distributed_entry_hits_subsequent_local_routed_request() {
    let (g, ids) = fig2_toy();
    let config = ServeConfig::default()
        .with_workers(2)
        .with_topk(TopKConfig::toy())
        .with_backend(Backend::Distributed { gps: 3 })
        .with_cache_capacity(64);
    let engine = ServeEngine::start(Arc::new(g), config);
    for request in sharing_mix(&ids) {
        // Default route: the distributed backend computes (or records a
        // local fallback) and the cache remembers the outcome.
        let cold = engine.submit(request.clone()).wait();
        assert!(!cold.from_cache);
        // Identical request, pinned to the local backend: same key, so it
        // must hit — no second computation, bit-identical ranking.
        let computed_before = engine.computed_queries();
        let warm = engine
            .submit(request.clone().with_backend(BackendKind::Local))
            .wait();
        assert!(warm.from_cache, "{request:?} missed the shared entry");
        assert_eq!(engine.computed_queries(), computed_before);
        let (c, w) = (cold.result.unwrap(), warm.result.unwrap());
        assert_eq!(c.ranking, w.ranking, "{request:?}");
        assert_eq!(c.bounds, w.bounds, "{request:?}");
        // Provenance of the computing run rides along with the entry.
        assert_eq!(warm.backend, cold.backend, "{request:?}");
        assert_eq!(warm.distributed, cold.distributed, "{request:?}");
    }
}

#[test]
fn local_entry_hits_subsequent_distributed_routed_request() {
    let (g, ids) = fig2_toy();
    let config = ServeConfig::default()
        .with_workers(2)
        .with_topk(TopKConfig::toy())
        .with_backend(Backend::Distributed { gps: 2 })
        .with_cache_capacity(64);
    let engine = ServeEngine::start(Arc::new(g), config);
    for request in sharing_mix(&ids) {
        // Pin the first serving to local: the entry is computed in-process.
        let cold = engine
            .submit(request.clone().with_backend(BackendKind::Local))
            .wait();
        assert!(!cold.from_cache);
        assert_eq!(cold.backend, BackendKind::Local);
        // The distributed-routed duplicate must reuse it rather than pay
        // any wire cost.
        let computed_before = engine.computed_queries();
        let warm = engine
            .submit(request.clone().with_backend(BackendKind::Distributed))
            .wait();
        assert!(warm.from_cache, "{request:?} missed the shared entry");
        assert_eq!(engine.computed_queries(), computed_before);
        assert_eq!(warm.backend, BackendKind::Local, "provenance preserved");
        assert!(warm.distributed.is_none(), "a hit crosses no wire");
        assert_eq!(
            cold.result.unwrap().ranking,
            warm.result.unwrap().ranking,
            "{request:?}"
        );
    }
}
