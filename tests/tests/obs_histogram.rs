//! Property-based contracts of the `rtr-obs` log-linear histogram, checked
//! against the exact sort-based percentile the bench crate keeps as an
//! oracle ([`rtr_bench::percentile`]):
//!
//! * merging two snapshots is indistinguishable from recording the union
//!   of their samples into one histogram;
//! * a reported quantile never undershoots the exact nearest-rank value
//!   and overshoots it by at most the bucket relative-error bound
//!   `1/SUB` (exactly 0 below `SUB`, where buckets have width 1);
//! * the bucket layout is monotone and `bucket_index` lands every value
//!   inside its own bucket's bounds.

use proptest::prelude::*;
use rtr_bench::percentile;
use rtr_obs::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS, SUB};

/// Strategy: a sample vector spanning the exact region, the log-linear
/// region, and the far tail.
fn arb_samples(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0..1_000_000_000u64, 1..max_len)
}

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new(3);
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn merge_is_recording_the_union(a in arb_samples(200), b in arb_samples(200)) {
        let mut merged = record_all(&a);
        merged.merge(&record_all(&b));
        let mut union = a.clone();
        union.extend_from_slice(&b);
        prop_assert_eq!(merged, record_all(&union));
    }

    #[test]
    fn quantiles_stay_within_the_relative_error_bound(
        values in arb_samples(300),
        qs in proptest::collection::vec(0..=100u64, 1..8),
    ) {
        let snap = record_all(&values);
        let exact: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        for q in qs {
            let got = snap.quantile(q as f64) as f64;
            let want = percentile(&exact, q as f64);
            // The histogram reports the containing bucket's upper bound:
            // never below the exact order statistic, and above it by at
            // most one bucket width (relative 1/SUB; exact below SUB).
            prop_assert!(got >= want, "q{q}: {got} < exact {want}");
            let ceiling = if want < SUB as f64 {
                want
            } else {
                want * (1.0 + 1.0 / SUB as f64)
            };
            prop_assert!(got <= ceiling, "q{q}: {got} > ceiling {ceiling} (exact {want})");
        }
    }

    #[test]
    fn bucket_index_lands_inside_its_bounds(v in 0..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo}, {hi}]");
    }
}

#[test]
fn bucket_bounds_are_monotone_and_contiguous() {
    let mut prev_hi = None;
    for i in 0..BUCKETS {
        let (lo, hi) = bucket_bounds(i);
        assert!(lo <= hi, "bucket {i} inverted: [{lo}, {hi}]");
        if let Some(p) = prev_hi {
            assert_eq!(lo, p + 1, "gap or overlap entering bucket {i}");
        }
        prev_hi = Some(hi);
    }
}

#[test]
fn quantile_is_exact_below_sub() {
    let h = Histogram::new(1);
    for v in 0..SUB {
        h.record(v);
    }
    let snap = h.snapshot();
    for v in 0..SUB {
        let q = 100.0 * (v + 1) as f64 / SUB as f64;
        assert_eq!(snap.quantile(q), v, "width-1 buckets must be exact");
    }
}
