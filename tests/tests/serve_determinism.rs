//! Concurrency-determinism suite for the serving layer.
//!
//! The contract: batch execution through `rtr-serve` is **bit-identical**
//! to the serial engines at any worker count — same rankings, same `f64`
//! bounds down to the last bit, same expansion counts, same active-set
//! statistics. Concurrency must only change *when* queries run, never
//! *what* they compute; likewise workspace reuse (the whole point of the
//! serving layer) must leave no residue from one query in the next.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rtr_core::RankParams;
use rtr_datagen::{QLog, QLogConfig};
use rtr_graph::toy::fig2_toy;
use rtr_graph::{Graph, NodeId};
use rtr_serve::{run_serial, QueryOutput, ServeConfig, ServeEngine};
use rtr_topk::{TopKConfig, TwoSBound};
use std::sync::Arc;

/// Strict comparison: every value that the engine computes must agree
/// exactly (no tolerances — determinism means bit-identity).
fn assert_outputs_identical(label: &str, a: &[QueryOutput], b: &[QueryOutput]) {
    assert_eq!(a.len(), b.len(), "{label}: batch sizes differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id, "{label}: ids diverge");
        assert_eq!(x.query, y.query, "{label}: queries diverge");
        let (rx, ry) = (
            x.result.as_ref().expect("query failed"),
            y.result.as_ref().expect("query failed"),
        );
        assert_eq!(rx.ranking, ry.ranking, "{label}: rankings diverge");
        // Bit-exact f64 equality, deliberately not an epsilon comparison.
        assert_eq!(rx.bounds, ry.bounds, "{label}: bounds diverge");
        assert_eq!(rx.expansions, ry.expansions, "{label}: expansions diverge");
        assert_eq!(rx.converged, ry.converged, "{label}: convergence diverges");
        assert_eq!(rx.active, ry.active, "{label}: active sets diverge");
    }
}

/// The plain allocating engine, one fresh state per query — the original
/// pre-serving code path, still the semantic ground truth.
fn run_allocating(g: &Graph, config: &ServeConfig, queries: &[NodeId]) -> Vec<QueryOutput> {
    let runner = TwoSBound::with_scheme(config.params, config.topk, config.scheme);
    queries
        .iter()
        .enumerate()
        .map(|(id, &query)| QueryOutput {
            id,
            query,
            result: runner.run(g, query).map_err(rtr_serve::ServeError::Query),
            queue_wait: std::time::Duration::ZERO,
            compute: std::time::Duration::ZERO,
        })
        .collect()
}

fn check_all_worker_counts(g: Graph, queries: Vec<NodeId>, config: ServeConfig) {
    let serial = run_serial(&g, &config, &queries);
    let allocating = run_allocating(&g, &config, &queries);
    assert_outputs_identical("workspace-reuse vs allocating", &serial, &allocating);
    let g = Arc::new(g);
    for workers in [1usize, 2, 8] {
        let engine = ServeEngine::start(Arc::clone(&g), config.with_workers(workers));
        let pooled = engine.run_batch(&queries);
        assert_outputs_identical(&format!("{workers} workers vs serial"), &pooled, &serial);
    }
}

#[test]
fn fig2_toy_identical_at_1_2_8_workers() {
    let (g, _) = fig2_toy();
    // Every node as a query: covers hubs, leaves, and the query types the
    // toy models.
    let queries: Vec<NodeId> = g.nodes().collect();
    let config = ServeConfig::default().with_topk(TopKConfig {
        k: 5,
        epsilon: 0.0,
        m_f: 4,
        m_t: 2,
        max_expansions: 500,
        ..TopKConfig::default()
    });
    check_all_worker_counts(g, queries, config);
}

#[test]
fn seeded_qlog_identical_at_1_2_8_workers() {
    let log = QLog::generate(&QLogConfig::tiny(), 77);
    let g = log.graph.clone();
    // A deterministic mixed workload: phrases (the realistic query type)
    // plus a few URLs.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut queries: Vec<NodeId> = log.phrases.clone();
    queries.shuffle(&mut rng);
    queries.truncate(12);
    queries.extend(log.urls.iter().copied().take(4));
    let config = ServeConfig {
        workers: 1,
        params: RankParams::default(),
        topk: TopKConfig::default(), // paper defaults: K = 10, ε = 0.01
        scheme: rtr_topk::Scheme::TwoSBound,
        ..ServeConfig::default() // cache off: the uncached contract
    };
    check_all_worker_counts(g, queries, config);
}

#[test]
fn repeated_queries_in_one_batch_are_identical() {
    // Workspace recycling inside a single worker: the same query early and
    // late in a batch must produce the same answer (no state leakage).
    let log = QLog::generate(&QLogConfig::tiny(), 3);
    let q = log.phrases[0];
    let other: Vec<NodeId> = log.phrases.iter().copied().skip(1).take(6).collect();
    let mut queries = vec![q];
    queries.extend(other);
    queries.push(q);
    let engine = ServeEngine::start(
        Arc::new(log.graph.clone()),
        ServeConfig::default().with_workers(1),
    );
    let outputs = engine.run_batch(&queries);
    let first = outputs.first().unwrap().result.as_ref().unwrap();
    let last = outputs.last().unwrap().result.as_ref().unwrap();
    assert_eq!(first.ranking, last.ranking);
    assert_eq!(first.bounds, last.bounds);
    assert_eq!(first.expansions, last.expansions);
}

#[test]
fn ablation_schemes_also_deterministic_under_concurrency() {
    // The serving layer is scheme-agnostic; the weaker Fig. 11a schemes
    // must round-trip through the pool unchanged too.
    let (g, _) = fig2_toy();
    let queries: Vec<NodeId> = g.nodes().collect();
    for scheme in rtr_topk::Scheme::all() {
        let config = ServeConfig::default()
            .with_scheme(scheme)
            .with_topk(TopKConfig {
                k: 3,
                epsilon: 0.0,
                m_f: 4,
                m_t: 2,
                max_expansions: 500,
                ..TopKConfig::default()
            });
        let serial = run_serial(&g, &config, &queries);
        let engine = ServeEngine::start(Arc::new(g.clone()), config.with_workers(4));
        let pooled = engine.run_batch(&queries);
        assert_outputs_identical(&format!("{scheme:?} pooled vs serial"), &pooled, &serial);
    }
}
