//! Property suite: `SparseMap`/`ScoreMap` against a `HashMap` model.
//!
//! The dense-backed sparse map replaced the per-query hash maps on the
//! serving hot path; this suite pins its semantics to the hash map it
//! replaced under random operation sequences — insert / add / remove /
//! clear / get interleavings — so any future optimization of the layout
//! (e.g. epoch stamping) has a behavioral contract to pass.

use proptest::collection;
use proptest::prelude::*;
use rtr_graph::{NodeSet, ScoreMap};
use std::collections::HashMap;

/// Key universe for the model tests (small, to force collisions of every
/// kind: re-insertion after removal, clears mid-sequence, swap-remove of
/// the latest and oldest entries).
const CAP: u32 = 24;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn score_map_matches_hashmap_model(
        ops in collection::vec((0..5u8, 0..CAP, -8.0f64..8.0), 1..120)
    ) {
        let mut map = ScoreMap::with_capacity(CAP as usize);
        let mut model: HashMap<u32, f64> = HashMap::new();
        for (op, k, v) in ops {
            match op {
                0 => prop_assert_eq!(map.insert(k, v), model.insert(k, v)),
                1 => {
                    // `add` and the model use the same per-key accumulation
                    // order, so values must stay bit-identical.
                    map.add(k, v);
                    *model.entry(k).or_insert(0.0) += v;
                }
                2 => prop_assert_eq!(map.remove(k), model.remove(&k)),
                3 => {
                    map.clear();
                    model.clear();
                }
                _ => {
                    prop_assert_eq!(map.get(k), model.get(&k).copied());
                    prop_assert_eq!(map.contains(k), model.contains_key(&k));
                }
            }
            prop_assert_eq!(map.len(), model.len());
            prop_assert_eq!(map.is_empty(), model.is_empty());
        }
        // Full-content equality at the end, order-normalized.
        let mut got: Vec<(u32, f64)> = map.iter().collect();
        got.sort_by_key(|&(k, _)| k);
        let mut want: Vec<(u32, f64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        want.sort_by_key(|&(k, _)| k);
        prop_assert_eq!(got, want);
        // score() view: 0 for absent keys, stored value otherwise.
        for k in 0..CAP {
            prop_assert_eq!(map.score(k), model.get(&k).copied().unwrap_or(0.0));
        }
    }

    #[test]
    fn node_set_matches_hashset_model(
        ops in collection::vec((0..3u8, 0..CAP), 1..100)
    ) {
        let mut set = NodeSet::with_capacity(CAP as usize);
        let mut model: std::collections::HashSet<u32> = Default::default();
        for (op, k) in ops {
            match op {
                0 => prop_assert_eq!(set.insert(k), model.insert(k)),
                1 => {
                    set.clear();
                    model.clear();
                }
                _ => prop_assert_eq!(set.contains(k), model.contains(&k)),
            }
            prop_assert_eq!(set.len(), model.len());
        }
        let mut got: Vec<u32> = set.iter().collect();
        got.sort_unstable();
        let mut want: Vec<u32> = model.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn clear_restores_pristine_state(
        keys in collection::vec(0..CAP, 1..40)
    ) {
        // After clear, a replayed insertion sequence produces the same map
        // as a fresh one — O(touched) clearing must not leave residue.
        let mut reused = ScoreMap::with_capacity(CAP as usize);
        for &k in &keys {
            reused.add(k, 1.0 + k as f64);
        }
        reused.clear();
        let mut fresh = ScoreMap::with_capacity(CAP as usize);
        for &k in &keys {
            reused.add(k, 2.0 + k as f64);
            fresh.add(k, 2.0 + k as f64);
        }
        let mut a: Vec<(u32, f64)> = reused.iter().collect();
        a.sort_by_key(|&(k, _)| k);
        let mut b: Vec<(u32, f64)> = fresh.iter().collect();
        b.sort_by_key(|&(k, _)| k);
        prop_assert_eq!(a, b);
    }
}
