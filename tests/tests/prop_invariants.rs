//! Property-based invariants over randomly generated graphs.
//!
//! These are the contracts the paper's derivations rest on:
//! * transition rows are stochastic (or zero for dangling nodes);
//! * F-Rank/T-Rank are probability-bounded and the decomposition
//!   `r ∝ f·t` equals brute-force round-trip enumeration (Prop. 2);
//! * 2SBound bounds always sandwich the exact scores and its ε = 0 top-K
//!   matches the exact ranking (Eq. 13–14);
//! * the irreducibility repair makes any graph strongly connected;
//! * metric axioms for NDCG and Kendall's tau.

use proptest::prelude::*;
use rtr_core::enumerate::{rtr_by_enumeration, rtr_constant};
use rtr_core::prelude::*;
use rtr_eval::{kendall_tau, ndcg_at_k};
use rtr_graph::prelude::*;
use rtr_graph::scc::tarjan_scc;
use rtr_graph::{Graph, NodeId};
use rtr_topk::prelude::*;

/// Strategy: a random directed weighted graph with `n` nodes and up to
/// `max_edges` edges (at least a spanning cycle so queries are never dead
/// ends and the graph is strongly connected).
fn arb_graph(max_n: usize, max_edges: usize) -> impl Strategy<Value = Graph> {
    (
        2..max_n,
        proptest::collection::vec((0..1000u32, 0..1000u32, 1..100u32), 0..max_edges),
    )
        .prop_map(move |(n, edges)| {
            let mut b = GraphBuilder::new();
            let ty = b.register_type("n");
            let nodes: Vec<_> = (0..n).map(|_| b.add_node(ty)).collect();
            // Spanning cycle guarantees irreducibility.
            for i in 0..n {
                b.add_edge(nodes[i], nodes[(i + 1) % n], 1.0);
            }
            for (s, d, w) in edges {
                let s = nodes[(s as usize) % n];
                let d = nodes[(d as usize) % n];
                b.add_edge(s, d, w as f64);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn transition_rows_stochastic(g in arb_graph(24, 80)) {
        for v in g.nodes() {
            let total: f64 = g.out_edges(v).map(|(_, p)| p).sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "row {v:?} sums to {total}");
        }
    }

    #[test]
    fn frank_trank_are_probabilities(g in arb_graph(20, 60)) {
        let params = RankParams::default();
        let q = Query::single(NodeId(0));
        let f = FRank::new(params).compute(&g, &q).unwrap();
        let t = TRank::new(params).compute(&g, &q).unwrap();
        // f is a distribution over targets; t is per-start probability.
        prop_assert!((f.total() - 1.0).abs() < 1e-6);
        for v in g.nodes() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&f.score(v)));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&t.score(v)));
        }
    }

    #[test]
    fn decomposition_matches_enumeration(g in arb_graph(10, 25)) {
        // Prop. 2 with constant walk lengths on random graphs.
        let q = NodeId(0);
        let by_enum = rtr_by_enumeration(&g, q, 2, 2);
        let by_product = rtr_constant(&g, q, 2, 2);
        prop_assert!(by_enum.linf_distance(&by_product) < 1e-9);
    }

    #[test]
    fn bca_matches_iterative_frank(g in arb_graph(20, 60)) {
        let params = RankParams::default();
        let q = NodeId(0);
        let exact = FRank::new(params).compute(&g, &Query::single(q)).unwrap();
        let mut bca = rtr_core::bca::Bca::new(&g, q, &params).unwrap();
        bca.run_to_residual(&mut &g, 1e-10, 16).unwrap();
        for v in g.nodes() {
            prop_assert!((bca.rho(v) - exact.score(v)).abs() < 1e-7);
        }
    }

    #[test]
    fn topk_bounds_sandwich_and_match_exact(g in arb_graph(18, 50)) {
        let params = RankParams::default();
        let q = NodeId(0);
        let exact = RoundTripRank::new(params)
            .compute(&g, &Query::single(q))
            .unwrap();
        let cfg = TopKConfig {
            k: 5,
            epsilon: 0.0,
            m_f: 8,
            m_t: 3,
            max_expansions: 20_000,
            ..TopKConfig::default()
        };
        let result = TwoSBound::new(params, cfg).run(&g, q).unwrap();
        // Bounds sandwich.
        for (v, &(lo, hi)) in result.ranking.iter().zip(&result.bounds) {
            let s = exact.score(*v);
            prop_assert!(s >= lo - 1e-9 && s <= hi + 1e-9);
        }
        // Scores agree with the exact top-K.
        let want = exact.top_k(result.ranking.len());
        for (got, want) in result.ranking.iter().zip(&want) {
            prop_assert!((exact.score(*got) - exact.score(*want)).abs() < 1e-9);
        }
    }

    #[test]
    fn rtr_plus_interpolates_endpoints(g in arb_graph(16, 40), beta in 0.0f64..=1.0) {
        let params = RankParams::default();
        let q = Query::single(NodeId(1));
        let f = FRank::new(params).compute(&g, &q).unwrap();
        let t = TRank::new(params).compute(&g, &q).unwrap();
        let blend = RoundTripRankPlus::new(params, beta).unwrap().blend(&f, &t);
        for v in g.nodes() {
            let lo = f.score(v).min(t.score(v));
            let hi = f.score(v).max(t.score(v));
            // Weighted geometric mean lies between its factors.
            prop_assert!(blend.score(v) >= lo - 1e-12 && blend.score(v) <= hi + 1e-12);
        }
    }

    #[test]
    fn repair_always_yields_strong_connectivity(
        n in 2usize..20,
        edges in proptest::collection::vec((0..100u32, 0..100u32), 0..40)
    ) {
        // Arbitrary (possibly disconnected) graph.
        let mut b = GraphBuilder::new();
        let ty = b.register_type("n");
        let nodes: Vec<_> = (0..n).map(|_| b.add_node(ty)).collect();
        for (s, d) in edges {
            let s = nodes[(s as usize) % n];
            let d = nodes[(d as usize) % n];
            if s != d {
                b.add_edge(s, d, 1.0);
            }
        }
        let g = b.build();
        let (fixed, _) = IrreducibilityRepair::default().repair(&g);
        prop_assert!(tarjan_scc(&fixed).is_strongly_connected());
    }

    #[test]
    fn ndcg_bounded_and_monotone_in_k(
        ranking in proptest::collection::vec(0..50u32, 1..20),
        truth in proptest::collection::vec(0..50u32, 1..8)
    ) {
        // Result lists never contain duplicates; dedup the raw sample.
        let mut seen = std::collections::HashSet::new();
        let ranking: Vec<NodeId> = ranking
            .into_iter()
            .map(NodeId)
            .filter(|v| seen.insert(*v))
            .collect();
        let truth: Vec<NodeId> = truth.into_iter().map(NodeId).collect();
        if ranking.is_empty() {
            return Ok(());
        }
        for k in 1..=ranking.len() {
            let v = ndcg_at_k(&ranking, &truth, k);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        }
        // A ranking that leads with the entire ground truth is perfect.
        let mut rest: Vec<NodeId> = ranking
            .iter()
            .copied()
            .filter(|v| !truth.contains(v))
            .collect();
        let mut unique_truth: Vec<NodeId> = truth.clone();
        unique_truth.sort_unstable();
        unique_truth.dedup();
        let mut perfect = unique_truth.clone();
        perfect.append(&mut rest);
        let k = perfect.len();
        prop_assert!((ndcg_at_k(&perfect, &unique_truth, k) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_range_and_self_identity(
        items in proptest::collection::vec(0..100u32, 2..15)
    ) {
        let mut order: Vec<NodeId> = items.into_iter().map(NodeId).collect();
        order.sort_unstable();
        order.dedup();
        if order.len() >= 2 {
            let tau = kendall_tau(&order, &order);
            prop_assert!((tau - 1.0).abs() < 1e-12);
            let mut rev = order.clone();
            rev.reverse();
            let tau = kendall_tau(&rev, &order);
            prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&tau));
        }
    }
}
