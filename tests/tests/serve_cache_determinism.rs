//! Determinism suite for the *cached* serving path.
//!
//! The contract extends `serve_determinism`: turning the result cache on —
//! at any worker count, with or without single-flight — must leave every
//! computed value bit-identical to the serial reference. A cache hit is a
//! clone of a deterministic engine's output and every output-relevant
//! input is part of the cache key, so hits can never differ from fresh
//! runs; these tests enforce that end to end, including second batches
//! served almost entirely from cache.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rtr_datagen::{QLog, QLogConfig};
use rtr_graph::toy::fig2_toy;
use rtr_graph::{Graph, NodeId};
use rtr_serve::{run_serial, QueryOutput, ServeConfig, ServeEngine};
use rtr_topk::TopKConfig;
use std::sync::Arc;

/// Strict comparison: every value that the engine computes must agree
/// exactly (no tolerances — determinism means bit-identity).
fn assert_outputs_identical(label: &str, a: &[QueryOutput], b: &[QueryOutput]) {
    assert_eq!(a.len(), b.len(), "{label}: batch sizes differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id, "{label}: ids diverge");
        assert_eq!(x.query, y.query, "{label}: queries diverge");
        let (rx, ry) = (
            x.result.as_ref().expect("query failed"),
            y.result.as_ref().expect("query failed"),
        );
        assert_eq!(rx.ranking, ry.ranking, "{label}: rankings diverge");
        // Bit-exact f64 equality, deliberately not an epsilon comparison.
        assert_eq!(rx.bounds, ry.bounds, "{label}: bounds diverge");
        assert_eq!(rx.expansions, ry.expansions, "{label}: expansions diverge");
        assert_eq!(rx.converged, ry.converged, "{label}: convergence diverges");
        assert_eq!(rx.active, ry.active, "{label}: active sets diverge");
    }
}

/// A workload with heavy repetition (every query appears `repeats` times,
/// shuffled): the shape a cache exists for.
fn repeated_shuffled(queries: &[NodeId], repeats: usize, seed: u64) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = queries
        .iter()
        .flat_map(|&q| std::iter::repeat_n(q, repeats))
        .collect();
    out.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
    out
}

fn check_cached_matches_serial(g: Graph, queries: Vec<NodeId>, config: ServeConfig) {
    assert!(config.cache_enabled(), "suite exercises the cached path");
    // The reference is the plain serial engine — no cache involved.
    let serial = run_serial(&g, &config.with_cache_capacity(0), &queries);
    let g = Arc::new(g);
    for workers in [1usize, 2, 8] {
        for single_flight in [true, false] {
            let label = format!("{workers} workers, single_flight={single_flight}");
            let engine = ServeEngine::start(
                Arc::clone(&g),
                config
                    .with_workers(workers)
                    .with_single_flight(single_flight),
            );
            // Cold pass: misses compute and populate the cache.
            let cold = engine.run_batch(&queries);
            assert_outputs_identical(&format!("{label}, cold"), &cold, &serial);
            // Warm pass: served from cache, still bit-identical.
            let warm = engine.run_batch(&queries);
            assert_outputs_identical(&format!("{label}, warm"), &warm, &serial);
            let stats = engine.cache_stats().expect("cache on");
            assert!(
                stats.hits > 0,
                "{label}: a repeated workload must hit the cache, got {stats:?}"
            );
        }
    }
}

#[test]
fn fig2_toy_cached_identical_at_1_2_8_workers() {
    let (g, _) = fig2_toy();
    let base: Vec<NodeId> = g.nodes().collect();
    let queries = repeated_shuffled(&base, 3, 11);
    let config = ServeConfig::default()
        .with_cache_capacity(256)
        .with_topk(TopKConfig {
            k: 5,
            epsilon: 0.0,
            m_f: 4,
            m_t: 2,
            max_expansions: 500,
            ..TopKConfig::default()
        });
    check_cached_matches_serial(g, queries, config);
}

#[test]
fn seeded_qlog_cached_identical_at_1_2_8_workers() {
    let log = QLog::generate(&QLogConfig::tiny(), 77);
    let g = log.graph.clone();
    let mut base: Vec<NodeId> = log.phrases.clone();
    base.shuffle(&mut ChaCha8Rng::seed_from_u64(7));
    base.truncate(10);
    let queries = repeated_shuffled(&base, 4, 23);
    // Paper defaults: K = 10, ε = 0.01.
    let config = ServeConfig::default().with_cache_capacity(64);
    check_cached_matches_serial(g, queries, config);
}

#[test]
fn tiny_cache_evicts_but_stays_correct() {
    // A cache far smaller than the distinct-query set thrashes (insert /
    // evict constantly) yet must never change an answer.
    let log = QLog::generate(&QLogConfig::tiny(), 5);
    let g = log.graph.clone();
    let base: Vec<NodeId> = log.phrases.iter().copied().take(12).collect();
    let queries = repeated_shuffled(&base, 3, 41);
    let config = ServeConfig::default()
        .with_cache_capacity(4)
        .with_cache_shards(2);
    let serial = run_serial(&g, &config.with_cache_capacity(0), &queries);
    let engine = ServeEngine::start(Arc::new(g), config.with_workers(4));
    let outputs = engine.run_batch(&queries);
    assert_outputs_identical("thrashing cache", &outputs, &serial);
    let stats = engine.cache_stats().expect("cache on");
    assert!(stats.evictions > 0, "capacity 4 must evict, got {stats:?}");
}

#[test]
fn ablation_schemes_cached_identical() {
    // The cache key includes the scheme, so every Fig. 11a ablation must
    // round-trip the cached path unchanged — and never share entries.
    let (g, _) = fig2_toy();
    let base: Vec<NodeId> = g.nodes().collect();
    let queries = repeated_shuffled(&base, 2, 31);
    for scheme in rtr_topk::Scheme::all() {
        let config = ServeConfig::default()
            .with_scheme(scheme)
            .with_cache_capacity(128)
            .with_topk(TopKConfig {
                k: 3,
                epsilon: 0.0,
                m_f: 4,
                m_t: 2,
                max_expansions: 500,
                ..TopKConfig::default()
            });
        let serial = run_serial(&g, &config.with_cache_capacity(0), &queries);
        let engine = ServeEngine::start(Arc::new(g.clone()), config.with_workers(4));
        let outputs = engine.run_batch(&queries);
        assert_outputs_identical(&format!("{scheme:?} cached vs serial"), &outputs, &serial);
    }
}

#[test]
fn graph_epoch_separates_cache_entries() {
    // Two byte-identical graphs have different epochs: an engine over the
    // second must not see (or be poisoned by) entries computed on the
    // first. Sharing one cache across engines isn't possible through the
    // public API today (each engine owns its cache), so pin the epoch
    // property directly: keys built on clone vs rebuild differ.
    let (g1, _) = fig2_toy();
    let (g2, _) = fig2_toy();
    assert_ne!(g1.epoch(), g2.epoch());
    let params = rtr_core::RankParams::default();
    let cfg = TopKConfig::toy();
    let k1 = rtr_cache::CacheKey::single(
        NodeId(0),
        g1.epoch(),
        &params,
        &cfg,
        rtr_topk::Scheme::TwoSBound,
    );
    let k2 = rtr_cache::CacheKey::single(
        NodeId(0),
        g2.epoch(),
        &params,
        &cfg,
        rtr_topk::Scheme::TwoSBound,
    );
    assert_ne!(k1, k2, "same query, different graph epoch: distinct keys");
    // A clone is the same graph content and keeps the epoch: cached
    // answers stay valid.
    assert_eq!(g1.clone().epoch(), g1.epoch());
}
