//! Property-based fuzzing of the wire protocol (PR-10 satellite): the
//! decoder must be *total*. For every input — well-formed, truncated at
//! any byte, bit-flipped anywhere, or adversarially sized — decoding
//! returns `Ok` or a typed [`WireError`]; it never panics and never
//! allocates beyond the declared (and capped) payload length. And for
//! every encodable request, decode ∘ encode is the identity, bit for bit,
//! in both the binary and the JSON payload modes.

use proptest::prelude::*;
use rtr_core::{Measure, Query, RankParams};
use rtr_graph::NodeId;
use rtr_net::json::{request_from_json, request_to_json};
use rtr_net::{
    decode_reject, decode_request, decode_response, encode_request, Frame, FrameType, WireError,
    HEADER_LEN, MAX_PAYLOAD,
};
use rtr_serve::QueryRequest;
use rtr_topk::{Scheme, TopKConfig};

/// Strategy: a request with a random normalized multi-node query and a
/// random subset of the optional override fields.
fn arb_request() -> impl Strategy<Value = QueryRequest> {
    (
        proptest::collection::vec((0..500u32, 0.05..1.0f64), 1..6),
        0..5u8,        // measure tag (4 = "leave default")
        0.05..0.95f64, // beta, when RtrPlus
        0..16u8,       // presence bitmask for k/params/scheme/topk
    )
        .prop_map(|(pairs, measure_tag, beta, presence)| {
            let total: f64 = pairs.iter().map(|(_, w)| w).sum();
            let normalized: Vec<(NodeId, f64)> =
                pairs.iter().map(|&(n, w)| (NodeId(n), w / total)).collect();
            let query = Query::from_normalized(&normalized).expect("normalized by construction");
            let mut request = QueryRequest::new(query);
            request = match measure_tag {
                0 => request.with_measure(Measure::F),
                1 => request.with_measure(Measure::T),
                2 => request.with_measure(Measure::Rtr),
                3 => request.with_measure(Measure::RtrPlus { beta }),
                _ => request,
            };
            if presence & 1 != 0 {
                request = request.with_k(1 + (presence as usize % 7));
            }
            if presence & 2 != 0 {
                request = request.with_params(RankParams {
                    alpha: 0.2 + beta / 10.0,
                    tolerance: 1e-7,
                    max_iterations: 50 + presence as usize,
                });
            }
            if presence & 4 != 0 {
                request = request.with_scheme(match presence % 4 {
                    0 => Scheme::TwoSBound,
                    1 => Scheme::GPlusS,
                    2 => Scheme::Gupta,
                    _ => Scheme::Sarkar,
                });
            }
            if presence & 8 != 0 {
                request = request.with_topk(TopKConfig::toy());
            }
            request
        })
}

fn encode_payload(request: &QueryRequest) -> Vec<u8> {
    let mut buf = bytes::BytesMut::new();
    encode_request(request, &mut buf);
    buf.as_slice().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // decode ∘ encode = identity for the binary codec, including the
    // f64 query-weight bits.
    #[test]
    fn binary_round_trip_is_identity(request in arb_request()) {
        let payload = encode_payload(&request);
        let back = decode_request(&payload);
        prop_assert!(back.is_ok(), "round trip failed: {:?}", back.err());
        prop_assert_eq!(back.unwrap(), request);
    }

    // Same identity through the JSON payload mode.
    #[test]
    fn json_round_trip_is_identity(request in arb_request()) {
        let text = request_to_json(&request);
        let back = request_from_json(&text);
        prop_assert!(back.is_ok(), "JSON trip failed on {text}: {:?}", back.err());
        prop_assert_eq!(back.unwrap(), request);
    }

    // Every truncation of a valid frame is `Truncated` (the streaming
    // "need more" signal) with honest byte accounting, and every
    // truncation of the bare payload is a typed error, never a panic.
    #[test]
    fn every_truncation_is_typed(request in arb_request(), frac in 0.0..1.0f64) {
        let payload = encode_payload(&request);
        let frame = Frame {
            frame_type: FrameType::Request,
            json: false,
            tenant: 42,
            request_id: 7,
            payload: bytes::Bytes::from(&payload[..]),
        };
        let wire = frame.to_bytes();
        let cut = ((wire.len() as f64) * frac) as usize; // in [0, len)
        match Frame::parse(&wire.as_slice()[..cut], MAX_PAYLOAD) {
            Err(WireError::Truncated { needed, available }) => {
                prop_assert_eq!(available, cut);
                prop_assert!(needed > cut);
                prop_assert!(needed <= wire.len());
            }
            other => prop_assert!(false, "cut at {cut}: {other:?}"),
        }
        let pcut = ((payload.len() as f64) * frac) as usize;
        prop_assert!(decode_request(&payload[..pcut]).is_err());
    }

    // Single bit flips anywhere in the payload: the decoder stays total
    // (Ok or typed Err — flips in low mantissa bits of a weight can
    // legitimately still decode).
    #[test]
    fn bit_flips_never_panic(request in arb_request(), pos in 0..4096usize, bit in 0..8u8) {
        let mut payload = encode_payload(&request);
        let n = payload.len();
        payload[pos % n] ^= 1 << bit;
        let _ = decode_request(&payload);
        // The same bytes thrown at the *other* decoders must also be
        // handled: a confused peer is a typed error, not a crash.
        let _ = decode_response(&payload);
        let _ = decode_reject(&payload);
    }

    // Arbitrary byte soup into the frame parser and all payload
    // decoders: total, typed, no panic, no over-allocation.
    #[test]
    fn random_bytes_are_handled(noise in proptest::collection::vec(0..=255u8, 0..(HEADER_LEN * 4))) {
        let _ = Frame::parse(&noise, MAX_PAYLOAD);
        let _ = decode_request(&noise);
        let _ = decode_response(&noise);
        let _ = decode_reject(&noise);
    }

    // A hostile declared length (up to the full u32 range) must be
    // rejected by header validation — `Oversized` against the
    // acceptor's cap — before any buffer is sized from it.
    #[test]
    fn hostile_lengths_are_rejected_before_allocation(
        declared in (MAX_PAYLOAD as u32 + 1)..u32::MAX,
        cap in 1024..65536usize,
    ) {
        let mut wire = Vec::with_capacity(HEADER_LEN);
        wire.extend_from_slice(b"RT");
        wire.push(1); // version
        wire.push(1); // Request
        wire.extend_from_slice(&[0; 4]); // flags + reserved
        wire.extend_from_slice(&9u32.to_le_bytes()); // tenant
        wire.extend_from_slice(&77u64.to_le_bytes()); // request id
        wire.extend_from_slice(&declared.to_le_bytes());
        match Frame::parse(&wire, cap) {
            Err(WireError::Oversized { len, max }) => {
                prop_assert_eq!(len, declared as usize);
                prop_assert_eq!(max, cap);
            }
            other => prop_assert!(false, "declared {declared}: {other:?}"),
        }
    }
}
