//! Single-flight stress suite.
//!
//! With the cache and single-flight on, M concurrent identical queries
//! must cost exactly one engine computation: the first claimant computes
//! and inserts, the other M−1 wait on the in-flight table and read the
//! shared result. `ServeEngine::computed_queries` counts actual engine
//! runs, so the assertion is direct — not a timing heuristic.

use rtr_datagen::{QLog, QLogConfig};
use rtr_graph::NodeId;
use rtr_serve::{run_serial, ServeConfig, ServeEngine};
use std::sync::Arc;

fn engine_with(workers: usize, single_flight: bool) -> (ServeEngine, Vec<NodeId>) {
    let log = QLog::generate(&QLogConfig::tiny(), 99);
    let phrases = log.phrases.clone();
    let config = ServeConfig::default()
        .with_workers(workers)
        .with_cache_capacity(256)
        .with_single_flight(single_flight);
    (ServeEngine::start(Arc::new(log.graph), config), phrases)
}

#[test]
fn identical_in_flight_queries_compute_once() {
    let (engine, phrases) = engine_with(8, true);
    let q = phrases[0];
    let batch = vec![q; 64];
    let outputs = engine.run_batch(&batch);

    // One computation, one insert, everyone else shared it.
    assert_eq!(engine.computed_queries(), 1, "single-flight must dedup");
    let stats = engine.cache_stats().expect("cache on");
    assert_eq!(stats.inserts, 1);
    assert_eq!(stats.hits, 63, "the other 63 must be served from cache");

    // And the shared result is the right one.
    let config = engine.config();
    let serial = run_serial(engine.graph(), &config.with_cache_capacity(0), &[q]);
    let want = serial[0].result.as_ref().unwrap();
    for out in &outputs {
        let got = out.result.as_ref().unwrap();
        assert_eq!(got.ranking, want.ranking);
        assert_eq!(got.bounds, want.bounds);
    }
}

#[test]
fn one_computation_per_distinct_in_flight_query() {
    let (engine, phrases) = engine_with(8, true);
    let distinct: Vec<NodeId> = phrases.iter().copied().take(4).collect();
    // 32 copies of each of the 4 queries, interleaved so duplicates of
    // every query are in flight together.
    let batch: Vec<NodeId> = (0..32).flat_map(|_| distinct.iter().copied()).collect();
    let outputs = engine.run_batch(&batch);
    assert_eq!(outputs.len(), 128);

    assert_eq!(
        engine.computed_queries(),
        distinct.len() as u64,
        "exactly one computation per distinct query"
    );
    let stats = engine.cache_stats().expect("cache on");
    assert_eq!(stats.inserts, distinct.len() as u64);
    assert_eq!(stats.hits, (batch.len() - distinct.len()) as u64);

    // Each occurrence of a query got the same (correct) answer.
    let serial = run_serial(
        engine.graph(),
        &engine.config().with_cache_capacity(0),
        &distinct,
    );
    for out in &outputs {
        let pos = distinct.iter().position(|&d| d == out.query).unwrap();
        let want = serial[pos].result.as_ref().unwrap();
        assert_eq!(out.result.as_ref().unwrap().ranking, want.ranking);
        assert_eq!(out.result.as_ref().unwrap().bounds, want.bounds);
    }
}

#[test]
fn sequential_duplicates_also_compute_once() {
    // Even with one worker (no two queries ever in flight together), the
    // cache alone collapses duplicates; single-flight must not interfere.
    let (engine, phrases) = engine_with(1, true);
    let q = phrases[1];
    let _ = engine.run_batch(&[q; 16]);
    assert_eq!(engine.computed_queries(), 1);
    assert_eq!(engine.cache_stats().unwrap().hits, 15);
}

#[test]
fn without_single_flight_duplicates_may_recompute_but_stay_identical() {
    // Control: cache on, single-flight off. Concurrent duplicates can race
    // to compute (wasted work, never wrong answers).
    let (engine, phrases) = engine_with(8, false);
    let q = phrases[2];
    let outputs = engine.run_batch(&[q; 32]);
    assert!(engine.computed_queries() >= 1);
    let first = outputs[0].result.as_ref().unwrap();
    for out in &outputs[1..] {
        let got = out.result.as_ref().unwrap();
        assert_eq!(got.ranking, first.ranking);
        assert_eq!(got.bounds, first.bounds);
    }
}

#[test]
fn failed_queries_do_not_wedge_single_flight() {
    // A failing query releases its in-flight key on the error path; later
    // duplicates must neither hang nor read a cached error.
    let (engine, phrases) = engine_with(4, true);
    let bad = NodeId(u32::MAX - 1);
    let outputs = engine.run_batch(&[bad; 16]);
    assert_eq!(outputs.len(), 16);
    for out in &outputs {
        assert!(out.result.is_err());
    }
    assert_eq!(engine.cache_stats().unwrap().inserts, 0);
    // A good batch afterwards still works and caches normally.
    let good = engine.run_batch(&[phrases[0], phrases[0]]);
    assert!(good[0].result.is_ok() && good[1].result.is_ok());
    assert_eq!(engine.cache_stats().unwrap().inserts, 1);
}
