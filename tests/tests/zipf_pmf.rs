//! Property suite pinning the `rtr-datagen` Zipf sampler.
//!
//! The skewed-workload benchmark (`throughput --skew`) and the QLog/BibNet
//! generators all lean on this sampler producing the distribution it
//! claims: `p(k) ∝ 1/(k+1)^s` over ranks `0..n`. If sampling drifted from
//! the analytic pmf, the cache hit rates and speedups the benchmark
//! reports would be artifacts of a broken workload, not of serving. So:
//! across random support sizes, exponents, and seeds, empirical rank
//! frequencies over a large sample must match the pmf within a tolerance
//! set by the sample size.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rtr_datagen::Zipf;

/// Draws per empirical check. At 60k draws the standard error of any
/// single rank's frequency is at most `sqrt(0.25 / 60000) ≈ 0.002`, so the
/// absolute tolerance of 0.01 sits at ~5 sigma — seeds are fixed, but the
/// property should hold for any seed, not one lucky one.
const DRAWS: usize = 60_000;
const TOLERANCE: f64 = 0.01;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn empirical_frequencies_match_analytic_pmf(
        n in 1usize..48,
        s in 0.3f64..2.8,
        seed in 0u64..100_000
    ) {
        let z = Zipf::new(n, s);
        prop_assert_eq!(z.len(), n);

        // The pmf itself is a distribution: positive, sums to 1, strictly
        // decreasing in rank (s > 0).
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "pmf sums to {}", total);
        for k in 0..n {
            prop_assert!(z.pmf(k) > 0.0);
            if k + 1 < n {
                prop_assert!(z.pmf(k) > z.pmf(k + 1), "pmf not decreasing at {}", k);
            }
        }

        // Empirical frequencies from a seeded sample match it.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut counts = vec![0usize; n];
        for _ in 0..DRAWS {
            let rank = z.sample(&mut rng);
            prop_assert!(rank < n, "sample {} out of support", rank);
            counts[rank] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let freq = count as f64 / DRAWS as f64;
            prop_assert!(
                (freq - z.pmf(k)).abs() < TOLERANCE,
                "rank {}: freq {} vs pmf {} (n={}, s={})",
                k, freq, z.pmf(k), n, s
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_under_seed(
        n in 1usize..64,
        s in 0.3f64..2.8,
        seed in 0u64..100_000
    ) {
        let z = Zipf::new(n, s);
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..64).map(|_| z.sample(&mut rng)).collect()
        };
        prop_assert_eq!(draw(seed), draw(seed));
    }
}
