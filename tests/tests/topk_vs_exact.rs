//! 2SBound against exact RoundTripRank on generated graphs — the online
//! algorithm's correctness contract, beyond the toy graph its unit tests use.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rtr_core::prelude::*;
use rtr_datagen::{BibNet, BibNetConfig, QLog, QLogConfig};
use rtr_graph::{Graph, NodeId};
use rtr_integration_tests::SEED;
use rtr_topk::prelude::*;

fn random_queries(g: &Graph, n: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut pool: Vec<NodeId> = g.nodes().filter(|&v| !g.is_dangling(v)).collect();
    pool.shuffle(&mut rng);
    pool.truncate(n);
    pool
}

fn exact_scores(g: &Graph, q: NodeId) -> ScoreVec {
    RoundTripRank::new(RankParams::default())
        .compute(g, &Query::single(q))
        .expect("exact RTR")
}

#[test]
fn zero_slack_topk_matches_exact_on_bibnet() {
    let net = BibNet::generate(&BibNetConfig::tiny(), SEED);
    let g = &net.graph;
    let cfg = TopKConfig {
        k: 10,
        epsilon: 0.0,
        max_expansions: 100_000,
        ..TopKConfig::default()
    };
    let runner = TwoSBound::new(RankParams::default(), cfg);
    for q in random_queries(g, 8, SEED) {
        let result = runner.run(g, q).expect("topk");
        let exact = exact_scores(g, q);
        let want = exact.top_k(10);
        for (got, want) in result.ranking.iter().zip(&want) {
            assert!(
                (exact.score(*got) - exact.score(*want)).abs() < 1e-9,
                "query {q:?}: got {got:?} ({}) want {want:?} ({})",
                exact.score(*got),
                exact.score(*want)
            );
        }
    }
}

#[test]
fn epsilon_guarantee_on_qlog() {
    let qlog = QLog::generate(&QLogConfig::tiny(), SEED);
    let g = &qlog.graph;
    let eps = 0.01;
    let cfg = TopKConfig {
        k: 10,
        epsilon: eps,
        ..TopKConfig::default()
    };
    let runner = TwoSBound::new(RankParams::default(), cfg);
    for q in random_queries(g, 8, SEED + 1) {
        let result = runner.run(g, q).expect("topk");
        let exact = exact_scores(g, q);
        // (a) no node exceeding the K-th returned score by ≥ ε is missed
        let kth = exact.score(*result.ranking.last().expect("k results"));
        for v in g.nodes() {
            if !result.ranking.contains(&v) {
                assert!(
                    exact.score(v) <= kth + eps + 1e-9,
                    "query {q:?}: missed {v:?} ({}) vs kth {kth}",
                    exact.score(v)
                );
            }
        }
        // (b) no swapped pair differing by ≥ ε
        for w in result.ranking.windows(2) {
            assert!(
                exact.score(w[0]) >= exact.score(w[1]) - eps - 1e-9,
                "query {q:?}: pair {w:?} swapped beyond ε"
            );
        }
    }
}

#[test]
fn bounds_sandwich_exact_scores_on_generated_graph() {
    let net = BibNet::generate(&BibNetConfig::tiny(), SEED + 5);
    let g = &net.graph;
    let runner = TwoSBound::new(
        RankParams::default(),
        TopKConfig {
            k: 5,
            epsilon: 0.02,
            ..TopKConfig::default()
        },
    );
    for q in random_queries(g, 5, SEED + 2) {
        let result = runner.run(g, q).expect("topk");
        let exact = exact_scores(g, q);
        for (v, &(lo, hi)) in result.ranking.iter().zip(&result.bounds) {
            let s = exact.score(*v);
            assert!(
                s >= lo - 1e-9 && s <= hi + 1e-9,
                "query {q:?}: {v:?} score {s} outside [{lo}, {hi}]"
            );
        }
    }
}

#[test]
fn all_schemes_produce_valid_epsilon_approximations() {
    let net = BibNet::generate(&BibNetConfig::tiny(), SEED + 6);
    let g = &net.graph;
    let eps = 0.02;
    for scheme in Scheme::all() {
        let runner = TwoSBound::with_scheme(
            RankParams::default(),
            TopKConfig {
                k: 5,
                epsilon: eps,
                ..TopKConfig::default()
            },
            scheme,
        );
        for q in random_queries(g, 3, SEED + 3) {
            let result = runner.run(g, q).expect("topk");
            let exact = exact_scores(g, q);
            let kth = exact.score(*result.ranking.last().expect("k results"));
            for v in g.nodes() {
                if !result.ranking.contains(&v) {
                    assert!(
                        exact.score(v) <= kth + eps + 1e-9,
                        "{}: query {q:?} missed {v:?}",
                        scheme.name()
                    );
                }
            }
        }
    }
}

#[test]
fn naive_and_2sbound_agree() {
    let qlog = QLog::generate(&QLogConfig::tiny(), SEED + 7);
    let g = &qlog.graph;
    let params = RankParams::default();
    for q in random_queries(g, 5, SEED + 4) {
        let naive = NaiveTopK::new(params, 5).run(g, q).expect("naive");
        let fast = TwoSBound::new(
            params,
            TopKConfig {
                k: 5,
                epsilon: 0.0,
                max_expansions: 100_000,
                ..TopKConfig::default()
            },
        )
        .run(g, q)
        .expect("2sbound");
        let exact = exact_scores(g, q);
        for (a, b) in naive.ranking.iter().zip(&fast.ranking) {
            assert!(
                (exact.score(*a) - exact.score(*b)).abs() < 1e-9,
                "query {q:?}: naive {a:?} vs 2sbound {b:?}"
            );
        }
    }
}
