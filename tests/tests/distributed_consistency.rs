//! Distributed 2SBound must agree with the single-machine algorithm on
//! generated graphs — **bit-identically**: same ranking, same bounds, same
//! expansion count, same active-set accounting, for any GP count, while
//! touching only a fraction of the graph. This is the property that makes
//! the serving layer's execution backends interchangeable (and lets them
//! share one result cache).
//!
//! The pool-level half of the contract lives below: mixed-measure request
//! batches driven through a `ServeEngine` on the distributed backend, at
//! {1, 2, 8} workers × {2, 4} GPs × cache off/on, must be bit-identical to
//! the serial local reference — including the measures the AP/GP protocol
//! doesn't cover, which fall back (recorded) to local execution.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rtr_core::prelude::*;
use rtr_core::Measure;
use rtr_datagen::{BibNet, BibNetConfig, QLog, QLogConfig};
use rtr_distributed::{
    DistributedTwoSBound, DistributedTwoSBoundPlus, DistributedWorkspace, GpCluster,
};
use rtr_graph::{Graph, NodeId};
use rtr_integration_tests::SEED;
use rtr_serve::{
    run_serial_requests, Backend, BackendKind, QueryRequest, ServeConfig, ServeEngine,
};
use rtr_topk::prelude::*;
use std::sync::Arc;

fn queries(g: &Graph, n: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut pool: Vec<NodeId> = g.nodes().filter(|&v| !g.is_dangling(v)).collect();
    pool.shuffle(&mut rng);
    pool.truncate(n);
    pool
}

fn cfg() -> TopKConfig {
    TopKConfig {
        k: 8,
        epsilon: 0.01,
        ..TopKConfig::default()
    }
}

#[test]
fn distributed_matches_local_bit_for_bit_on_bibnet() {
    let net = BibNet::generate(&BibNetConfig::tiny(), SEED);
    let g = &net.graph;
    let params = RankParams::default();
    let cluster = GpCluster::spawn(g, 4);
    for q in queries(g, 5, SEED) {
        let local = TwoSBound::new(params, cfg()).run(g, q).expect("local");
        let (dist, stats) = DistributedTwoSBound::new(params, cfg())
            .run(&cluster, q)
            .expect("distributed");
        assert_eq!(local.ranking, dist.ranking, "query {q:?}");
        assert_eq!(local.bounds, dist.bounds, "query {q:?}");
        assert_eq!(local.expansions, dist.expansions, "query {q:?}");
        assert_eq!(local.converged, dist.converged, "query {q:?}");
        assert_eq!(local.active, dist.active, "query {q:?}");
        assert!(stats.bytes_transferred > 0, "query {q:?}");
    }
}

#[test]
fn distributed_plus_matches_local_bit_for_bit_on_qlog() {
    let qlog = QLog::generate(&QLogConfig::small(), SEED);
    let g = &qlog.graph;
    let params = RankParams::default();
    let cluster = GpCluster::spawn(g, 3);
    for (i, q) in queries(g, 4, SEED + 7).into_iter().enumerate() {
        let beta = [0.0, 0.3, 0.7, 1.0][i % 4];
        let local = TwoSBoundPlus::new(params, cfg(), beta)
            .unwrap()
            .run(g, q)
            .expect("local");
        let (dist, _) = DistributedTwoSBoundPlus::new(params, cfg(), beta)
            .unwrap()
            .run(&cluster, q)
            .expect("distributed");
        assert_eq!(local.ranking, dist.ranking, "query {q:?} β={beta}");
        assert_eq!(local.bounds, dist.bounds, "query {q:?} β={beta}");
        assert_eq!(local.expansions, dist.expansions, "query {q:?} β={beta}");
        assert_eq!(local.active, dist.active, "query {q:?} β={beta}");
    }
}

#[test]
fn ablation_schemes_match_local_bit_for_bit() {
    let net = BibNet::generate(&BibNetConfig::tiny(), SEED + 11);
    let g = &net.graph;
    let params = RankParams::default();
    let cluster = GpCluster::spawn(g, 2);
    let q = queries(g, 1, SEED + 11)[0];
    for scheme in Scheme::all() {
        let local = TwoSBound::with_scheme(params, cfg(), scheme)
            .run(g, q)
            .expect("local");
        let (dist, _) = DistributedTwoSBound::with_scheme(params, cfg(), scheme)
            .run(&cluster, q)
            .expect("distributed");
        assert_eq!(local.ranking, dist.ranking, "{scheme:?}");
        assert_eq!(local.bounds, dist.bounds, "{scheme:?}");
        assert_eq!(local.expansions, dist.expansions, "{scheme:?}");
    }
}

#[test]
fn active_set_is_partial_on_qlog() {
    let qlog = QLog::generate(&QLogConfig::small(), SEED);
    let g = &qlog.graph;
    let cluster = GpCluster::spawn(g, 3);
    let runner = DistributedTwoSBound::new(RankParams::default(), cfg());
    for q in queries(g, 5, SEED + 1) {
        let (_, stats) = runner.run(&cluster, q).expect("distributed");
        assert!(
            stats.active_nodes < g.node_count(),
            "query {q:?}: active set covered the whole graph"
        );
        assert!(stats.bytes_transferred > 0);
        // Every touched node was classified exactly once: demanded over
        // the wire, or already resident (prefetched earlier this query).
        assert_eq!(
            stats.blocks_fetched + stats.blocks_from_cache,
            stats.active_nodes
        );
    }
}

#[test]
fn block_cache_invalidates_on_epoch_bump_and_graph_swap() {
    let net1 = BibNet::generate(&BibNetConfig::tiny(), SEED + 8);
    let net2 = BibNet::generate(&BibNetConfig::tiny(), SEED + 9);
    let (g1, g2) = (&net1.graph, &net2.graph);
    let q = queries(g2, 8, SEED + 9)
        .into_iter()
        .find(|v| v.index() < g1.node_count() && !g1.is_dangling(*v))
        .expect("a query valid in both graphs");
    let params = RankParams::default();
    let engine = DistributedTwoSBound::new(params, cfg());
    let mut ws = DistributedWorkspace::new();

    // Warm the worker's block cache against g1.
    let c1 = GpCluster::spawn(g1, 3);
    engine.run_with(&c1, q, &mut ws).expect("g1 run");

    // Same graph, bumped epoch: identical content, but the cache must not
    // trust it. The warm workspace pays exactly a fresh (cold) workspace's
    // wire cost — fetch for fetch, byte for byte. (`blocks_from_cache`
    // stays nonzero even when cold: it also counts same-query hits on
    // blocks prefetched moments earlier, so the cold run is the baseline.)
    let mut g1b = g1.clone();
    g1b.bump_epoch();
    let c1b = GpCluster::spawn(&g1b, 3);
    let (_, cold) = engine.run(&c1b, q).expect("cold reference");
    let (_, stats) = engine.run_with(&c1b, q, &mut ws).expect("bumped run");
    assert_eq!(stats, cold, "stale epoch must not serve a single block");
    assert!(stats.bytes_transferred > 0);

    // A different graph entirely: again exactly cold-cache wire cost, and
    // the answer must match a local run on the new graph — no stale g1
    // adjacency can leak into it.
    let c2 = GpCluster::spawn(g2, 3);
    let (_, cold2) = engine.run(&c2, q).expect("cold g2 reference");
    let (dist, stats) = engine.run_with(&c2, q, &mut ws).expect("g2 run");
    assert_eq!(stats, cold2, "stale blocks must not serve");
    let local = TwoSBound::new(params, cfg()).run(g2, q).expect("local g2");
    assert_eq!(local.ranking, dist.ranking);
    assert_eq!(local.bounds, dist.bounds);
    assert_eq!(local.active, dist.active);
}

#[test]
fn warm_cache_reduces_wire_cost_without_changing_answers() {
    let net = BibNet::generate(&BibNetConfig::tiny(), SEED + 4);
    let g = &net.graph;
    let cluster = GpCluster::spawn(g, 4);
    let engine = DistributedTwoSBound::new(RankParams::default(), cfg());
    let mut ws = DistributedWorkspace::new();
    for q in queries(g, 3, SEED + 4) {
        let (cold, cold_stats) = engine.run_with(&cluster, q, &mut ws).expect("cold");
        let (warm, warm_stats) = engine.run_with(&cluster, q, &mut ws).expect("warm");
        assert_eq!(cold.ranking, warm.ranking, "query {q:?}");
        assert_eq!(cold.bounds, warm.bounds, "query {q:?}");
        assert_eq!(cold.active, warm.active, "query {q:?}");
        // The repeat visit is entirely cache-resident: zero wire rounds.
        assert_eq!(warm_stats.fetch_requests, 0, "query {q:?}");
        assert_eq!(warm_stats.bytes_transferred, 0, "query {q:?}");
        assert_eq!(
            warm_stats.blocks_from_cache, warm_stats.active_nodes,
            "query {q:?}"
        );
        assert!(cold_stats.bytes_transferred > 0, "query {q:?}");
    }
}

#[test]
fn gp_counts_are_equivalent_on_generated_graph() {
    let net = BibNet::generate(&BibNetConfig::tiny(), SEED + 2);
    let g = &net.graph;
    let params = RankParams::default();
    let q = queries(g, 1, SEED + 2)[0];
    let mut results = Vec::new();
    for gps in [1usize, 3, 7] {
        let cluster = GpCluster::spawn(g, gps);
        let (res, _) = DistributedTwoSBound::new(params, cfg())
            .run(&cluster, q)
            .expect("distributed");
        results.push((res.ranking, res.bounds));
    }
    assert_eq!(results[0], results[1], "1 GP vs 3 GPs differ");
    assert_eq!(results[1], results[2], "3 GPs vs 7 GPs differ");
}

#[test]
fn more_gps_spread_the_stripe() {
    let net = BibNet::generate(&BibNetConfig::tiny(), SEED + 3);
    let g = &net.graph;
    use rtr_distributed::Striping;
    for gps in [2usize, 5] {
        let stores = Striping::new(gps).partition(g);
        let total: usize = stores.iter().map(|s| s.len()).sum();
        assert_eq!(total, g.node_count());
        let max = stores.iter().map(|s| s.len()).max().expect("stores");
        let min = stores.iter().map(|s| s.len()).min().expect("stores");
        assert!(max - min <= 1, "unbalanced striping at {gps} GPs");
    }
}

// ---------------------------------------------------------------------------
// Pool-level consistency: the distributed backend through `ServeEngine`.
// ---------------------------------------------------------------------------

/// A deterministic heterogeneous request mix: RTR and RTR+β (served
/// distributed), F/T and multi-node RTR (recorded fallbacks to local).
fn mixed_requests(g: &Graph, n: usize, seed: u64) -> Vec<QueryRequest> {
    let pool = queries(g, 64.min(g.node_count()), seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0d15);
    (0..n)
        .map(|_| {
            let node = pool[rng.gen_range(0..pool.len())];
            let request = if rng.gen_bool(0.15) {
                let other = pool[rng.gen_range(0..pool.len())];
                QueryRequest::nodes(&[node, other])
            } else {
                QueryRequest::node(node)
            };
            match rng.gen_range(0..6) {
                0 => request.with_measure(Measure::F),
                1 => request.with_measure(Measure::T),
                2 => request.with_measure(Measure::RtrPlus { beta: 0.3 }),
                3 => request.with_measure(Measure::RtrPlus { beta: 0.7 }),
                _ => request, // RoundTripRank
            }
        })
        .collect()
}

/// Whether this request takes the genuinely distributed path (single-node
/// RTR / RTR+ bound search) or the recorded local fallback.
fn expect_distributed(r: &QueryRequest, g: &Graph, defaults: &ServeConfig) -> bool {
    let resolved = r.resolve(defaults);
    resolved.query.nodes().len() == 1
        && resolved.topk.k < g.node_count()
        && matches!(resolved.measure, Measure::Rtr | Measure::RtrPlus { .. })
}

#[test]
fn mixed_measure_batches_match_serial_local_at_every_pool_shape() {
    let net = BibNet::generate(&BibNetConfig::tiny(), SEED + 5);
    let g = Arc::new(net.graph);
    let base = ServeConfig::default().with_topk(cfg());
    let requests = mixed_requests(&g, 40, SEED + 5);
    // The ground truth: the serial reference on the local backend.
    let serial = run_serial_requests(&g, &base, &requests);

    for gps in [2usize, 4] {
        for workers in [1usize, 2, 8] {
            for cache in [0usize, 256] {
                let config = base
                    .with_backend(Backend::Distributed { gps })
                    .with_workers(workers)
                    .with_cache_capacity(cache);
                let engine = ServeEngine::start(Arc::clone(&g), config);
                let responses = engine.run_requests(&requests);
                assert_eq!(responses.len(), serial.len());
                for (got, want) in responses.iter().zip(&serial) {
                    let label = format!("gps={gps} workers={workers} cache={cache} id={}", want.id);
                    let (got_r, want_r) = (
                        got.result.as_ref().expect("served"),
                        want.result.as_ref().expect("serial"),
                    );
                    assert_eq!(got_r.ranking, want_r.ranking, "{label}");
                    assert_eq!(got_r.bounds, want_r.bounds, "{label}");
                    assert_eq!(got_r.expansions, want_r.expansions, "{label}");
                    // Provenance: the distributed path really ran for the
                    // shapes the protocol covers, the fallback is recorded
                    // for the rest, and genuinely distributed answers paid
                    // a measurable wire cost.
                    if expect_distributed(&requests[want.id], &g, &base) {
                        assert_eq!(got.backend, BackendKind::Distributed, "{label}");
                        // Wire bytes may legitimately be zero once the
                        // worker's cross-query block cache is warm; the
                        // touched-set accounting must hold regardless.
                        let stats = got.distributed.expect("distributed stats");
                        assert!(stats.active_nodes > 0, "{label}");
                        assert_eq!(
                            stats.blocks_fetched + stats.blocks_from_cache,
                            stats.active_nodes,
                            "{label}"
                        );
                    } else {
                        assert_eq!(got.backend, BackendKind::Local, "{label}");
                        assert!(got.distributed.is_none(), "{label}");
                    }
                }
            }
        }
    }
}

#[test]
fn per_request_route_override_wins_over_engine_backend() {
    let net = BibNet::generate(&BibNetConfig::tiny(), SEED + 6);
    let g = Arc::new(net.graph);
    let q = queries(&g, 1, SEED + 6)[0];
    let base = ServeConfig::default().with_topk(cfg());

    // Distributed engine, request pinned to local.
    let engine = ServeEngine::start(
        Arc::clone(&g),
        base.with_backend(Backend::Distributed { gps: 2 }),
    );
    let responses = engine.run_requests(&[
        QueryRequest::node(q),
        QueryRequest::node(q).with_backend(BackendKind::Local),
    ]);
    assert_eq!(responses[0].backend, BackendKind::Distributed);
    assert_eq!(responses[1].backend, BackendKind::Local);
    assert!(!responses[0].routed_fallback, "route honored");
    assert!(!responses[1].routed_fallback, "local is always available");
    let (a, b) = (
        responses[0].result.as_ref().unwrap(),
        responses[1].result.as_ref().unwrap(),
    );
    assert_eq!(a.ranking, b.ranking);
    assert_eq!(a.bounds, b.bounds);

    // Local engine, request asking for distributed: no cluster exists, so
    // the route falls back to local — deterministically, and recorded.
    let engine = ServeEngine::start(Arc::clone(&g), base);
    let response = engine
        .submit(QueryRequest::node(q).with_backend(BackendKind::Distributed))
        .wait();
    assert_eq!(response.backend, BackendKind::Local);
    assert!(
        response.routed_fallback,
        "the silent substitution must be recorded"
    );
    assert!(response.distributed.is_none());
    assert_eq!(response.result.unwrap().ranking, a.ranking);
}
