//! Distributed 2SBound must agree with the single-machine algorithm on
//! generated graphs, for any GP count, while touching only a fraction of
//! the graph.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rtr_core::prelude::*;
use rtr_datagen::{BibNet, BibNetConfig, QLog, QLogConfig};
use rtr_distributed::{DistributedTwoSBound, GpCluster};
use rtr_graph::{Graph, NodeId};
use rtr_integration_tests::SEED;
use rtr_topk::prelude::*;

fn queries(g: &Graph, n: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut pool: Vec<NodeId> = g.nodes().filter(|&v| !g.is_dangling(v)).collect();
    pool.shuffle(&mut rng);
    pool.truncate(n);
    pool
}

fn cfg() -> TopKConfig {
    TopKConfig {
        k: 8,
        epsilon: 0.01,
        ..TopKConfig::default()
    }
}

#[test]
fn distributed_matches_local_on_bibnet() {
    let net = BibNet::generate(&BibNetConfig::tiny(), SEED);
    let g = &net.graph;
    let params = RankParams::default();
    let exact_measure = RoundTripRank::new(params);
    let cluster = GpCluster::spawn(g, 4);
    for q in queries(g, 5, SEED) {
        let local = TwoSBound::new(params, cfg()).run(g, q).expect("local");
        let (dist, _) = DistributedTwoSBound::new(params, cfg())
            .run(&cluster, g.node_count(), q)
            .expect("distributed");
        let exact = exact_measure.compute(g, &Query::single(q)).expect("exact");
        assert_eq!(local.ranking.len(), dist.ranking.len());
        for (l, d) in local.ranking.iter().zip(&dist.ranking) {
            assert!(
                (exact.score(*l) - exact.score(*d)).abs() < 2.0 * cfg().epsilon + 1e-9,
                "query {q:?}: local {l:?} vs distributed {d:?}"
            );
        }
    }
}

#[test]
fn active_set_is_partial_on_qlog() {
    let qlog = QLog::generate(&QLogConfig::small(), SEED);
    let g = &qlog.graph;
    let cluster = GpCluster::spawn(g, 3);
    let runner = DistributedTwoSBound::new(RankParams::default(), cfg());
    for q in queries(g, 5, SEED + 1) {
        let (_, stats) = runner
            .run(&cluster, g.node_count(), q)
            .expect("distributed");
        assert!(
            stats.active_nodes < g.node_count(),
            "query {q:?}: active set covered the whole graph"
        );
        assert!(stats.bytes_transferred > 0);
        // Everything resident was fetched exactly once.
        assert_eq!(stats.blocks_fetched, stats.active_nodes);
    }
}

#[test]
fn gp_counts_are_equivalent_on_generated_graph() {
    let net = BibNet::generate(&BibNetConfig::tiny(), SEED + 2);
    let g = &net.graph;
    let params = RankParams::default();
    let q = queries(g, 1, SEED + 2)[0];
    let mut results = Vec::new();
    for gps in [1usize, 3, 7] {
        let cluster = GpCluster::spawn(g, gps);
        let (res, _) = DistributedTwoSBound::new(params, cfg())
            .run(&cluster, g.node_count(), q)
            .expect("distributed");
        results.push(res.ranking);
    }
    assert_eq!(results[0], results[1], "1 GP vs 3 GPs differ");
    assert_eq!(results[1], results[2], "3 GPs vs 7 GPs differ");
}

#[test]
fn more_gps_spread_the_stripe() {
    let net = BibNet::generate(&BibNetConfig::tiny(), SEED + 3);
    let g = &net.graph;
    use rtr_distributed::Striping;
    for gps in [2usize, 5] {
        let stores = Striping::new(gps).partition(g);
        let total: usize = stores.iter().map(|s| s.len()).sum();
        assert_eq!(total, g.node_count());
        let max = stores.iter().map(|s| s.len()).max().expect("stores");
        let min = stores.iter().map(|s| s.len()).min().expect("stores");
        assert!(max - min <= 1, "unbalanced striping at {gps} GPs");
    }
}
