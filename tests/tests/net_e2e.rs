//! End-to-end suite for the network front door (PR-10 acceptance):
//!
//! * N concurrent connections over loopback, mixed-measure traffic —
//!   every wire response bit-identical to `run_serial_requests`;
//! * graceful shutdown drains every accepted request before `Goodbye`;
//! * a tenant exceeding its token bucket gets typed `Overloaded` while
//!   another tenant's p99 stays inside the SLO;
//! * write-queue backpressure surfaces as `Overloaded`, not unbounded
//!   buffering;
//! * the JSON payload mode, metrics frame, ping, and hostile-bytes
//!   handling, all over a real socket.

use rtr_core::{Measure, Query, RankParams};
use rtr_datagen::{QLog, QLogConfig};
use rtr_graph::toy::fig2_toy;
use rtr_graph::NodeId;
use rtr_net::{
    AdmissionConfig, ErrorCode, NetClient, NetError, NetServer, NetServerConfig, Reject,
    TenantPolicy,
};
use rtr_serve::{run_serial_requests, QueryRequest, QueryResponse, ServeConfig, ServeEngine};
use rtr_topk::{Scheme, TopKConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The serving identity, minus transport-local fields (ids are
/// per-connection, timing/worker/cache provenance are run-dependent).
fn assert_same_answer(label: &str, wire: &QueryResponse, reference: &QueryResponse) {
    assert_eq!(wire.request, reference.request, "{label}: resolution");
    match (&wire.result, &reference.result) {
        (Ok(w), Ok(r)) => {
            assert_eq!(w.ranking, r.ranking, "{label}: ranking");
            // Bit-exact f64 equality — the codec must not perturb a bit.
            assert_eq!(w.bounds, r.bounds, "{label}: bounds");
            assert_eq!(w.expansions, r.expansions, "{label}: expansions");
            assert_eq!(w.converged, r.converged, "{label}: convergence");
            assert_eq!(w.active, r.active, "{label}: active set");
        }
        (Err(w), Err(r)) => assert_eq!(w.to_string(), r.to_string(), "{label}: error"),
        (w, r) => panic!("{label}: outcome mismatch: {w:?} vs {r:?}"),
    }
}

fn mixed_requests(nodes: &[NodeId]) -> Vec<QueryRequest> {
    let mut requests = Vec::new();
    for (i, &q) in nodes.iter().enumerate() {
        requests.push(QueryRequest::node(q));
        requests.push(QueryRequest::node(q).with_measure(Measure::F).with_k(3));
        requests.push(QueryRequest::node(q).with_measure(Measure::T).with_k(8));
        requests.push(QueryRequest::node(q).with_measure(Measure::RtrPlus { beta: 0.3 }));
        if i + 1 < nodes.len() {
            requests.push(QueryRequest::nodes(&[q, nodes[i + 1]]).with_k(6));
            requests.push(
                QueryRequest::new(Query::weighted(&[(q, 3.0), (nodes[i + 1], 1.0)]).unwrap())
                    .with_measure(Measure::F),
            );
        }
        requests.push(QueryRequest::node(q).with_scheme(Scheme::Gupta).with_k(3));
        requests.push(QueryRequest::node(q).with_params(RankParams::with_alpha(0.35)));
    }
    requests
}

fn toy_config() -> ServeConfig {
    ServeConfig::default().with_topk(TopKConfig {
        k: 5,
        epsilon: 0.0,
        m_f: 4,
        m_t: 2,
        max_expansions: 500,
        ..TopKConfig::default()
    })
}

/// Acceptance clause 1: four concurrent connections each replay the full
/// mixed-measure workload (pipelined); every response is bit-identical
/// to the serial in-process reference.
#[test]
fn concurrent_connections_are_bit_identical_to_serial() {
    let (g, ids) = fig2_toy();
    let config = toy_config();
    let requests = mixed_requests(&[ids.t1, ids.t2, ids.v1, ids.p[0]]);
    let serial = run_serial_requests(&g, &config, &requests);

    let engine = Arc::new(ServeEngine::start(Arc::new(g), config.with_workers(4)));
    let server = NetServer::start(Arc::clone(&engine), NetServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let clients: Vec<_> = (0..4)
        .map(|c| {
            let requests = requests.clone();
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).unwrap().with_tenant(c);
                // Pipelined: all sends first, then all receives, so the
                // four connections genuinely overlap inside the server.
                let ids: Vec<u64> = requests.iter().map(|r| client.send(r).unwrap()).collect();
                let outcomes: Vec<(u64, QueryResponse)> = ids
                    .iter()
                    .map(|_| {
                        let (id, outcome) = client.recv().unwrap();
                        (id, outcome.expect("request unexpectedly rejected"))
                    })
                    .collect();
                client.goodbye().unwrap();
                outcomes
            })
        })
        .collect();

    for (c, handle) in clients.into_iter().enumerate() {
        let outcomes = handle.join().unwrap();
        assert_eq!(outcomes.len(), serial.len());
        for (i, ((echoed, wire), reference)) in outcomes.iter().zip(&serial).enumerate() {
            assert_eq!(*echoed, i as u64, "request ids echo in order");
            assert_same_answer(&format!("client {c}, request {i}"), wire, reference);
        }
    }
    server.shutdown();
}

/// Acceptance clause 2: shutdown while requests are in flight. Every
/// request the server admitted produces a response before the `Goodbye`;
/// `shutdown()` returning means every thread was joined.
#[test]
fn graceful_shutdown_drains_every_accepted_request() {
    const IN_FLIGHT: usize = 32;
    let (g, ids) = fig2_toy();
    // One worker so a backlog genuinely exists when shutdown lands.
    let engine = Arc::new(ServeEngine::start(
        Arc::new(g),
        toy_config().with_workers(1),
    ));
    let server = NetServer::start(Arc::clone(&engine), NetServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let client = std::thread::spawn(move || {
        let mut client = NetClient::connect(addr).unwrap();
        for i in 0..IN_FLIGHT {
            let node = [ids.t1, ids.t2, ids.v1][i % 3];
            client.send(&QueryRequest::node(node)).unwrap();
        }
        let mut delivered = 0;
        loop {
            match client.recv() {
                Ok((_, Ok(_))) => delivered += 1,
                Ok((_, Err(reject))) => panic!("unexpected rejection: {reject}"),
                Err(NetError::ServerClosed) => return delivered,
                Err(e) => panic!("transport error: {e}"),
            }
        }
    });

    // Wait until the server has admitted the full pipeline, then yank it.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let admitted = engine
            .metrics_snapshot()
            .counter_value("rtr_net_requests_admitted_total", &[])
            .unwrap_or(0);
        if admitted as usize == IN_FLIGHT {
            break;
        }
        assert!(Instant::now() < deadline, "server never admitted the batch");
        std::thread::sleep(Duration::from_millis(1));
    }
    server.shutdown();

    let delivered = client.join().unwrap();
    assert_eq!(
        delivered, IN_FLIGHT,
        "an accepted request was dropped by shutdown"
    );
}

/// Acceptance clause 3: tenant 7 exceeds its token bucket and collects
/// typed `Overloaded` rejections with retry hints; tenant 8, running
/// concurrently under no limit, sees every call succeed with p99 inside
/// the SLO.
#[test]
fn rate_limited_tenant_rejects_while_neighbor_stays_in_slo() {
    const SLO: Duration = Duration::from_millis(500);
    let (g, ids) = fig2_toy();
    let admission = AdmissionConfig::unlimited().with_tenant(
        7,
        TenantPolicy {
            rate_qps: 5.0,
            burst: 2.0,
        },
    );
    let engine = Arc::new(ServeEngine::start(
        Arc::new(g),
        toy_config().with_workers(2),
    ));
    let server = NetServer::start(
        Arc::clone(&engine),
        NetServerConfig::default().with_admission(admission),
    )
    .unwrap();
    let addr = server.local_addr();

    let noisy = std::thread::spawn(move || {
        let mut client = NetClient::connect(addr).unwrap().with_tenant(7);
        let mut ok = 0usize;
        let mut rejects: Vec<Reject> = Vec::new();
        for _ in 0..20 {
            match client.call(&QueryRequest::node(ids.t1)).unwrap() {
                Ok(_) => ok += 1,
                Err(reject) => rejects.push(reject),
            }
        }
        (ok, rejects)
    });
    let polite = std::thread::spawn(move || {
        let mut client = NetClient::connect(addr).unwrap().with_tenant(8);
        let mut latencies = Vec::new();
        for i in 0..50 {
            let node = [ids.t1, ids.t2, ids.v1][i % 3];
            let begin = Instant::now();
            let outcome = client.call(&QueryRequest::node(node)).unwrap();
            latencies.push(begin.elapsed());
            assert!(outcome.is_ok(), "the polite tenant must never be rejected");
        }
        latencies
    });

    let (ok, rejects) = noisy.join().unwrap();
    // Burst of 2 admits at least two instantly; 20 back-to-back calls at
    // 5 qps must overflow the bucket.
    assert!(ok >= 2, "burst capacity must admit, got {ok}");
    assert!(!rejects.is_empty(), "the noisy tenant was never throttled");
    for reject in &rejects {
        assert_eq!(reject.code, ErrorCode::Overloaded, "typed Overloaded");
        assert!(reject.retry_after_ms > 0, "retry hint present");
    }

    let mut latencies = polite.join().unwrap();
    latencies.sort();
    let p99 = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];
    assert!(
        p99 < SLO,
        "neighbor p99 {p99:?} blew the {SLO:?} SLO while tenant 7 was throttled"
    );
    server.shutdown();
}

/// Backpressure: with a depth-1 write queue and a slow query at the head
/// of the pipeline, the flood behind it is refused with typed
/// `Overloaded` — never buffered without bound, never dropped silently.
/// A client that keeps flooding past the reserved control lane is
/// disconnected, and the admitted prefix still completes through the
/// drain.
#[test]
fn write_queue_backpressure_rejects_with_typed_overloaded() {
    const FLOOD: usize = 64;
    const CONTROL_DEPTH: usize = 8;
    let log = QLog::generate(&QLogConfig::tiny(), 2013);
    let nodes = log.phrases.clone();
    let engine = Arc::new(ServeEngine::start(
        Arc::new(log.graph.clone()),
        ServeConfig::default().with_workers(1),
    ));
    let server = NetServer::start(
        Arc::clone(&engine),
        NetServerConfig::default().with_queue_depths(1, CONTROL_DEPTH),
    )
    .unwrap();

    let mut client = NetClient::connect(server.local_addr()).unwrap();
    // Head-of-line: the single engine worker is pre-loaded with a dozen
    // distinct expensive exact sweeps (~45ms each on this graph), so the
    // wire request's ticket wait — which is what holds the writer — spans
    // ~500ms while the reader races through the flood in microseconds.
    // The margin keeps the window deterministic even when the whole suite
    // runs in parallel on a small box.
    let expensive = |q: &[NodeId], k: usize| {
        QueryRequest::nodes(q).with_topk(TopKConfig {
            k,
            epsilon: 0.0,
            max_expansions: 1_000_000,
            ..TopKConfig::default()
        })
    };
    let _junk: Vec<_> = (0..12)
        .map(|i| engine.submit(expensive(&nodes[i..nodes.len().min(i + 8)], 40 + i)))
        .collect();
    let slow = expensive(&nodes[..nodes.len().min(8)], 50);
    client.send(&slow).unwrap();
    for i in 0..FLOOD {
        client
            .send(&QueryRequest::node(nodes[i % nodes.len()]))
            .unwrap();
    }
    let mut ok = 0usize;
    let mut overloaded = 0usize;
    let disconnected = loop {
        match client.recv() {
            Ok((_, Ok(_))) => ok += 1,
            Ok((_, Err(reject))) => {
                assert_eq!(reject.code, ErrorCode::Overloaded, "typed backpressure");
                assert!(reject.retry_after_ms > 0, "retry hint present");
                overloaded += 1;
            }
            Err(NetError::ServerClosed) => break true,
            Err(e) => panic!("transport error: {e}"),
        }
        if ok + overloaded == FLOOD + 1 {
            break false;
        }
    };
    assert!(ok >= 1, "the slow head-of-line request must complete");
    assert!(
        overloaded > 0,
        "a depth-1 queue under a {FLOOD}-deep flood must backpressure"
    );
    assert!(
        overloaded <= CONTROL_DEPTH,
        "rejections beyond the control lane must not be buffered"
    );
    // The flood overran even the reserved error lane, so the server hung
    // up rather than buffer or go silent — the bounded-memory guarantee.
    assert!(disconnected, "an overrunning flood must be disconnected");
    assert!(
        ok + overloaded < FLOOD + 1,
        "the cut tail proves nothing was buffered beyond the two lanes"
    );
    server.shutdown();
}

/// JSON payload mode over a real socket: same bit-exact identity.
#[test]
fn json_mode_round_trips_over_the_socket() {
    let (g, ids) = fig2_toy();
    let config = toy_config();
    let requests = vec![
        QueryRequest::node(ids.t1),
        QueryRequest::nodes(&[ids.t1, ids.t2])
            .with_measure(Measure::RtrPlus { beta: 0.7 })
            .with_k(3),
        QueryRequest::node(NodeId(9999)), // out of range → typed error result
    ];
    let serial = run_serial_requests(&g, &config, &requests);
    let engine = Arc::new(ServeEngine::start(Arc::new(g), config));
    let server = NetServer::start(Arc::clone(&engine), NetServerConfig::default()).unwrap();

    let mut client = NetClient::connect(server.local_addr())
        .unwrap()
        .with_json(true);
    for (i, (request, reference)) in requests.iter().zip(&serial).enumerate() {
        let wire = client.call(request).unwrap().expect("admitted");
        assert_same_answer(&format!("json request {i}"), &wire, reference);
    }
    server.shutdown();
}

/// Ping, the metrics frame, and net-layer counters showing up in the
/// same Prometheus text as the engine's.
#[test]
fn ping_and_metrics_frame_expose_net_counters() {
    let (g, ids) = fig2_toy();
    let engine = Arc::new(ServeEngine::start(Arc::new(g), toy_config()));
    let server = NetServer::start(Arc::clone(&engine), NetServerConfig::default()).unwrap();

    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client.ping().unwrap();
    client.call(&QueryRequest::node(ids.t1)).unwrap().unwrap();
    let text = client.metrics().unwrap();
    for needle in [
        "rtr_net_connections_opened_total",
        "rtr_net_frames_received_total",
        "rtr_net_requests_admitted_total",
    ] {
        assert!(text.contains(needle), "metrics text missing {needle}");
    }
    // One registry: the serving engine's own metrics ride along.
    assert!(
        text.contains("rtr_serve"),
        "engine metrics missing from the wire metrics frame"
    );
    server.shutdown();
}

/// Hostile bytes on a fresh connection: a typed `Error` frame comes
/// back (Malformed — framing lost), then the server hangs up; the
/// server survives and keeps serving other connections.
#[test]
fn garbage_bytes_get_a_typed_error_and_the_server_survives() {
    use std::io::{Read, Write};
    let (g, ids) = fig2_toy();
    let engine = Arc::new(ServeEngine::start(Arc::new(g), toy_config()));
    let server = NetServer::start(Arc::clone(&engine), NetServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).unwrap(); // server sends Error then EOF
    let (frame, _) = rtr_net::Frame::parse(&reply, rtr_net::MAX_PAYLOAD).unwrap();
    assert_eq!(frame.frame_type, rtr_net::FrameType::Error);
    let reject = rtr_net::decode_reject(frame.payload.as_slice()).unwrap();
    assert_eq!(reject.code, ErrorCode::Malformed);

    // The front door is unfazed.
    let mut client = NetClient::connect(addr).unwrap();
    assert!(client.call(&QueryRequest::node(ids.t1)).unwrap().is_ok());
    server.shutdown();
}
