//! Property suite: the `rtr-cache` LRU against a `HashMap` + recency-list
//! model.
//!
//! The sharded cache is the layer that lets serving skip recomputation, so
//! its semantics must be boringly exact: a bounded map with
//! least-recently-used eviction, where both `get` and `insert` refresh
//! recency. The reference model is the obvious O(n) implementation — a
//! `HashMap` for contents plus a `Vec` ordered most-recent-first — driven
//! through random operation sequences alongside the real structure.

use proptest::collection;
use proptest::prelude::*;
use rtr_cache::{CacheConfig, LruShard, ShardedCache};
use std::collections::HashMap;

/// The O(n) reference: contents + explicit recency order (front = MRU).
struct Model {
    map: HashMap<u32, u32>,
    recency: Vec<u32>,
    capacity: usize,
}

impl Model {
    fn new(capacity: usize) -> Self {
        Model {
            map: HashMap::new(),
            recency: Vec::new(),
            capacity,
        }
    }

    fn touch(&mut self, k: u32) {
        self.recency.retain(|&r| r != k);
        self.recency.insert(0, k);
    }

    fn get(&mut self, k: u32) -> Option<u32> {
        let v = self.map.get(&k).copied();
        if v.is_some() {
            self.touch(k);
        }
        v
    }

    /// Insert/update; returns the evicted `(key, value)` if one fell out.
    fn insert(&mut self, k: u32, v: u32) -> Option<(u32, u32)> {
        if self.map.insert(k, v).is_some() {
            self.touch(k);
            return None;
        }
        let evicted = if self.map.len() > self.capacity {
            let lru = self.recency.pop().expect("over capacity implies entries");
            let ev = self.map.remove(&lru).expect("recency tracks contents");
            Some((lru, ev))
        } else {
            None
        };
        self.touch(k);
        evicted
    }

    fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
    }
}

/// Key universe deliberately larger than any tested capacity, so eviction,
/// re-insertion of evicted keys, and hit/miss mixes all occur.
const KEYS: u32 = 32;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    // The single shard IS the LRU: every operation must agree with the
    // model exactly, including which entry each insert evicts.
    #[test]
    fn lru_shard_matches_model(
        capacity in 1usize..12,
        ops in collection::vec((0..4u8, 0..KEYS, 0..1000u32), 1..150)
    ) {
        let mut lru = LruShard::new(capacity);
        let mut model = Model::new(capacity);
        for (op, k, v) in ops {
            match op {
                0 | 1 => {
                    // Insert twice as often as the other ops: pressure on
                    // the eviction path is where LRU bugs live.
                    prop_assert_eq!(lru.insert(k, v), model.insert(k, v));
                }
                2 => prop_assert_eq!(lru.get(&k).copied(), model.get(k)),
                _ => {
                    lru.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(lru.len(), model.map.len());
            prop_assert!(lru.len() <= capacity);
            // Recency order must agree wholesale, not just per-op.
            let got: Vec<u32> = lru.iter_mru().map(|(&k, _)| k).collect();
            prop_assert_eq!(&got, &model.recency);
        }
        // Final contents agree key by key (peek leaves recency alone).
        for k in 0..KEYS {
            prop_assert_eq!(lru.peek(&k).copied(), model.map.get(&k).copied());
        }
    }

    // A single-shard ShardedCache degenerates to one global LRU, so the
    // same model pins the concurrent wrapper's sequential semantics —
    // plus its hit/miss accounting.
    #[test]
    fn single_shard_cache_matches_model(
        capacity in 1usize..12,
        ops in collection::vec((0..3u8, 0..KEYS, 0..1000u32), 1..150)
    ) {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(CacheConfig {
            capacity,
            shards: 1,
        });
        let mut model = Model::new(capacity);
        let (mut hits, mut misses) = (0u64, 0u64);
        for (op, k, v) in ops {
            match op {
                0 | 1 => {
                    cache.insert(k, v);
                    model.insert(k, v);
                }
                _ => {
                    let got = cache.get(&k);
                    prop_assert_eq!(got, model.get(k));
                    match got {
                        Some(_) => hits += 1,
                        None => misses += 1,
                    }
                }
            }
            prop_assert_eq!(cache.len(), model.map.len());
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits, hits);
        prop_assert_eq!(stats.misses, misses);
    }

    // Multi-shard coherence: whatever the shard layout, a hit must return
    // the *latest* value inserted for that key, and the cache never holds
    // more than its budget.
    #[test]
    fn multi_shard_cache_serves_latest_values(
        shards in 1usize..6,
        capacity in 1usize..24,
        ops in collection::vec((0..3u8, 0..KEYS, 0..1000u32), 1..150)
    ) {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(CacheConfig {
            capacity,
            shards,
        });
        let mut latest: HashMap<u32, u32> = HashMap::new();
        for (op, k, v) in ops {
            match op {
                0 | 1 => {
                    cache.insert(k, v);
                    latest.insert(k, v);
                }
                _ => {
                    if let Some(got) = cache.get(&k) {
                        // Entries may be evicted at the cache's discretion
                        // (per-shard LRU), but never served stale.
                        prop_assert_eq!(Some(got), latest.get(&k).copied());
                    }
                }
            }
            prop_assert!(cache.len() <= cache.capacity());
        }
    }
}
