//! Statistical properties of the open-loop Poisson arrival generator.
//!
//! The `--open-loop` throughput bench replays a seeded schedule of
//! exponential inter-arrival gaps (`rtr_bench::openloop::poisson_arrivals`)
//! so that both schedulers see *identical* offered load. That A/B design
//! is only sound if the generator actually is a Poisson process and
//! actually is deterministic, so this suite pins:
//!
//! * determinism — same `(rate, n, seed)` ⇒ the same schedule, different
//!   seeds ⇒ different schedules;
//! * strict monotonicity — arrival times strictly increase (no two
//!   requests are scheduled for the same nanosecond);
//! * mean rate — the empirical rate converges on the requested rate;
//! * exponential shape — inter-arrival gaps have coefficient of variation
//!   ≈ 1 (the memoryless signature separating a Poisson process from a
//!   uniform jitter or a fixed-interval ticker), and the gap distribution
//!   has the exponential's median/mean ratio `ln 2`.

use proptest::prelude::*;
use rtr_bench::openloop::poisson_arrivals;
use std::time::Duration;

fn gaps(schedule: &[Duration]) -> Vec<f64> {
    let mut prev = 0.0;
    schedule
        .iter()
        .map(|t| {
            let s = t.as_secs_f64();
            let gap = s - prev;
            prev = s;
            gap
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Same inputs, same schedule; a different seed must diverge.
    #[test]
    fn schedule_is_a_pure_function_of_rate_and_seed(
        rate in 50.0f64..50_000.0,
        seed in 0u64..u64::MAX,
    ) {
        let a = poisson_arrivals(rate, 256, seed);
        let b = poisson_arrivals(rate, 256, seed);
        prop_assert_eq!(&a, &b);
        let c = poisson_arrivals(rate, 256, seed ^ 0xdead_beef);
        prop_assert_ne!(&a, &c);
    }

    // Arrival times strictly increase: exponential gaps are almost surely
    // positive, and the generator must not collapse two arrivals onto the
    // same instant at any rate.
    #[test]
    fn arrival_times_strictly_increase(
        rate in 50.0f64..50_000.0,
        seed in 0u64..u64::MAX,
    ) {
        let schedule = poisson_arrivals(rate, 512, seed);
        prop_assert_eq!(schedule.len(), 512);
        for w in schedule.windows(2) {
            prop_assert!(w[0] < w[1], "arrivals must be strictly ordered");
        }
    }

    // The empirical rate matches the requested rate. At n = 4096 the
    // sample mean of exponential gaps has relative standard error
    // 1/√n ≈ 1.6%, so an 8% band is ~5σ — tight enough to catch a
    // wrong-by-a-constant generator, loose enough to never flake.
    #[test]
    fn empirical_rate_matches_offered_rate(
        rate in 50.0f64..50_000.0,
        seed in 0u64..u64::MAX,
    ) {
        let n = 4096;
        let schedule = poisson_arrivals(rate, n, seed);
        let span = schedule.last().unwrap().as_secs_f64();
        let measured = n as f64 / span;
        let rel = (measured - rate).abs() / rate;
        prop_assert!(rel < 0.08, "measured {measured:.1} vs offered {rate:.1} QPS");
    }

    // The memoryless signature: exponential gaps have standard deviation
    // equal to their mean (CV = 1) and median/mean = ln 2 ≈ 0.693.
    // A uniform-jitter generator would show CV ≈ 0.58 and ratio ≈ 1;
    // a fixed ticker CV = 0 — both far outside these bands at n = 4096.
    #[test]
    fn gaps_are_exponentially_distributed(
        rate in 50.0f64..50_000.0,
        seed in 0u64..u64::MAX,
    ) {
        let schedule = poisson_arrivals(rate, 4096, seed);
        let g = gaps(&schedule);
        let n = g.len() as f64;
        let mean = g.iter().sum::<f64>() / n;
        let var = g.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let cv = var.sqrt() / mean;
        prop_assert!((cv - 1.0).abs() < 0.15, "coefficient of variation {cv:.3}");

        let mut sorted = g;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let ratio = median / mean;
        let ln2 = std::f64::consts::LN_2;
        prop_assert!(
            (ratio - ln2).abs() < 0.1,
            "median/mean {ratio:.3}, exponential expects {ln2:.3}"
        );
    }
}
