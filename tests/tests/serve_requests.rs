//! Determinism + equivalence suite for the per-request serving API.
//!
//! One `ServeEngine` now serves heterogeneous traffic: F-Rank, T-Rank,
//! RoundTripRank, and RoundTripRank+ at per-request β, over single- and
//! multi-node queries, with per-request k/params/scheme overrides. The
//! contract has two halves:
//!
//! 1. **Concurrency + caching change nothing**: a mixed batch at 1, 2, and
//!    8 workers, cache on or off, single-flight on or off, is bit-identical
//!    to the serial reference (`run_serial_requests`).
//! 2. **The pool is the engines**: every response is bit-identical to
//!    running the corresponding *direct* engine — `FRank`/`TRank` for the
//!    exact measures, `TwoSBound`/`TwoSBoundPlus` for the bound paths,
//!    `RoundTripRank`/`RoundTripRankPlus` for multi-node queries — with
//!    the request's effective parameters.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rtr_core::prelude::*;
use rtr_datagen::{QLog, QLogConfig};
use rtr_graph::toy::fig2_toy;
use rtr_graph::{Graph, NodeId};
use rtr_serve::{run_serial_requests, QueryRequest, QueryResponse, ServeConfig, ServeEngine};
use rtr_topk::{Scheme, TopKConfig, TwoSBound, TwoSBoundPlus};
use std::sync::Arc;

/// Strict comparison: every value that the engine computes must agree
/// exactly (no tolerances — determinism means bit-identity).
fn assert_responses_identical(label: &str, a: &[QueryResponse], b: &[QueryResponse]) {
    assert_eq!(a.len(), b.len(), "{label}: batch sizes differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id, "{label}: ids diverge");
        assert_eq!(x.request, y.request, "{label}: resolved requests diverge");
        let (rx, ry) = (
            x.result.as_ref().expect("query failed"),
            y.result.as_ref().expect("query failed"),
        );
        assert_eq!(rx.ranking, ry.ranking, "{label}: rankings diverge");
        // Bit-exact f64 equality, deliberately not an epsilon comparison.
        assert_eq!(rx.bounds, ry.bounds, "{label}: bounds diverge");
        assert_eq!(rx.expansions, ry.expansions, "{label}: expansions diverge");
        assert_eq!(rx.converged, ry.converged, "{label}: convergence diverges");
        assert_eq!(rx.active, ry.active, "{label}: active sets diverge");
    }
}

/// The full measure/β/k mix over a pool of query nodes: the traffic shape
/// the `QueryRequest` redesign exists for.
fn mixed_requests(nodes: &[NodeId]) -> Vec<QueryRequest> {
    let mut requests = Vec::new();
    for (i, &q) in nodes.iter().enumerate() {
        requests.push(QueryRequest::node(q)); // RTR, default k
        requests.push(QueryRequest::node(q).with_measure(Measure::F).with_k(3));
        requests.push(QueryRequest::node(q).with_measure(Measure::T).with_k(8));
        requests.push(QueryRequest::node(q).with_measure(Measure::RtrPlus { beta: 0.3 }));
        requests.push(
            QueryRequest::node(q)
                .with_measure(Measure::RtrPlus { beta: 0.7 })
                .with_k(3),
        );
        if i + 1 < nodes.len() {
            requests.push(QueryRequest::nodes(&[q, nodes[i + 1]]).with_k(6));
            requests.push(
                QueryRequest::new(Query::weighted(&[(q, 3.0), (nodes[i + 1], 1.0)]).unwrap())
                    .with_measure(Measure::F),
            );
        }
        // Per-request scheme and params overrides ride along.
        requests.push(QueryRequest::node(q).with_scheme(Scheme::Gupta).with_k(3));
        requests.push(QueryRequest::node(q).with_params(RankParams::with_alpha(0.35)));
    }
    // Interleave duplicates so the cache and single-flight paths see
    // repeats of every measure in flight together.
    let dups: Vec<QueryRequest> = requests.iter().step_by(3).cloned().collect();
    requests.extend(dups);
    requests
}

fn check_all_worker_counts(g: Graph, requests: Vec<QueryRequest>, config: ServeConfig) {
    let serial = run_serial_requests(&g, &config, &requests);
    let g = Arc::new(g);
    for workers in [1usize, 2, 8] {
        for cache in [0usize, 256] {
            for single_flight in [true, false] {
                let label =
                    format!("{workers} workers, cache {cache}, single_flight {single_flight}");
                let engine = ServeEngine::start(
                    Arc::clone(&g),
                    config
                        .with_workers(workers)
                        .with_cache_capacity(cache)
                        .with_single_flight(single_flight),
                );
                let pooled = engine.run_requests(&requests);
                assert_responses_identical(&label, &pooled, &serial);
                if cache > 0 {
                    // Warm pass: served from cache, still bit-identical,
                    // and flagged as cached.
                    let warm = engine.run_requests(&requests);
                    assert_responses_identical(&format!("{label}, warm"), &warm, &serial);
                    assert!(
                        warm.iter().all(|r| r.from_cache),
                        "{label}: every warm response must come from the cache"
                    );
                }
            }
        }
    }
}

#[test]
fn fig2_toy_mixed_measures_identical_at_1_2_8_workers() {
    let (g, ids) = fig2_toy();
    let config = ServeConfig::default().with_topk(TopKConfig {
        k: 5,
        epsilon: 0.0,
        m_f: 4,
        m_t: 2,
        max_expansions: 500,
        ..TopKConfig::default()
    });
    let requests = mixed_requests(&[ids.t1, ids.t2, ids.v1, ids.p[0]]);
    check_all_worker_counts(g, requests, config);
}

#[test]
fn seeded_qlog_mixed_measures_identical_at_1_2_8_workers() {
    let log = QLog::generate(&QLogConfig::tiny(), 77);
    let g = log.graph.clone();
    let mut nodes: Vec<NodeId> = log.phrases.clone();
    nodes.shuffle(&mut ChaCha8Rng::seed_from_u64(7));
    nodes.truncate(4);
    // Paper defaults: K = 10, ε = 0.01.
    check_all_worker_counts(g, mixed_requests(&nodes), ServeConfig::default());
}

/// The acceptance clause: one engine, one batch mixing every measure (two
/// distinct β values), multi-node queries, and two k values, with cache and
/// single-flight on — each response bit-identical to the corresponding
/// direct engine run.
#[test]
fn mixed_batch_matches_direct_engines_with_cache_and_single_flight_on() {
    let (g, ids) = fig2_toy();
    let topk = TopKConfig {
        k: 5,
        epsilon: 0.0,
        m_f: 4,
        m_t: 2,
        max_expansions: 500,
        ..TopKConfig::default()
    };
    let config = ServeConfig::builder()
        .workers(4)
        .topk(topk)
        .cache_capacity(256)
        .single_flight(true)
        .build()
        .unwrap();
    let params = config.params;

    let requests = vec![
        QueryRequest::node(ids.t1), // RTR, k=5
        QueryRequest::node(ids.t1)
            .with_measure(Measure::F)
            .with_k(3), // F, k=3
        QueryRequest::node(ids.t1).with_measure(Measure::T), // T, k=5
        QueryRequest::node(ids.t2).with_measure(Measure::RtrPlus { beta: 0.3 }),
        QueryRequest::node(ids.t2)
            .with_measure(Measure::RtrPlus { beta: 0.7 })
            .with_k(3),
        QueryRequest::nodes(&[ids.t1, ids.t2]).with_k(3), // multi-node RTR
        QueryRequest::nodes(&[ids.t1, ids.t2]).with_measure(Measure::RtrPlus { beta: 0.7 }),
    ];
    let engine = ServeEngine::start(Arc::new(g.clone()), config);
    let responses = engine.run_requests(&requests);

    // Direct engines, one per request, with the request's effective
    // parameters.
    let check_exact = |response: &QueryResponse, scores: &ScoreVec| {
        let result = response.result.as_ref().unwrap();
        let k = response.request.topk.k;
        assert_eq!(result.ranking, scores.top_k(k));
        for (v, &(lo, hi)) in result.ranking.iter().zip(&result.bounds) {
            assert_eq!(lo, scores.score(*v), "exact bounds are the exact score");
            assert_eq!(hi, lo);
        }
        assert!(result.converged);
    };

    // [0] single-node RTR → 2SBound.
    let direct = TwoSBound::new(params, topk).run(&g, ids.t1).unwrap();
    let got = responses[0].result.as_ref().unwrap();
    assert_eq!(got.ranking, direct.ranking);
    assert_eq!(got.bounds, direct.bounds);
    assert_eq!(got.expansions, direct.expansions);
    assert_eq!(got.active, direct.active);

    // [1] F-Rank → exact PPR, top-3.
    let f = FRank::new(params)
        .compute(&g, &Query::single(ids.t1))
        .unwrap();
    assert_eq!(responses[1].request.topk.k, 3);
    check_exact(&responses[1], &f);

    // [2] T-Rank → exact, k from engine default.
    let t = TRank::new(params)
        .compute(&g, &Query::single(ids.t1))
        .unwrap();
    assert_eq!(responses[2].request.topk.k, 5);
    check_exact(&responses[2], &t);

    // [3, 4] single-node RTR+ at two βs → 2SBound+.
    for (idx, beta, k) in [(3usize, 0.3, 5usize), (4, 0.7, 3)] {
        let direct = TwoSBoundPlus::new(params, TopKConfig { k, ..topk }, beta)
            .unwrap()
            .run(&g, ids.t2)
            .unwrap();
        let got = responses[idx].result.as_ref().unwrap();
        assert_eq!(got.ranking, direct.ranking, "β={beta}");
        assert_eq!(got.bounds, direct.bounds, "β={beta}");
        assert_eq!(got.expansions, direct.expansions, "β={beta}");
    }

    // [5] multi-node RTR → exact linearity reduction.
    let multi = Query::uniform(&[ids.t1, ids.t2]);
    let rtr = RoundTripRank::new(params).compute(&g, &multi).unwrap();
    assert_eq!(responses[5].request.topk.k, 3);
    check_exact(&responses[5], &rtr);

    // [6] multi-node RTR+ → exact linearity reduction with β blend.
    let plus = RoundTripRankPlus::new(params, 0.7)
        .unwrap()
        .compute(&g, &multi)
        .unwrap();
    check_exact(&responses[6], &plus);

    // Distinct parameterizations may never share cache entries.
    assert_eq!(engine.cache_len(), requests.len());
    assert_eq!(engine.computed_queries(), requests.len() as u64);
}

#[test]
fn per_request_errors_do_not_disturb_the_rest_of_a_mixed_batch() {
    let (g, ids) = fig2_toy();
    let config = ServeConfig::default()
        .with_workers(2)
        .with_topk(TopKConfig::toy())
        .with_cache_capacity(64);
    let engine = ServeEngine::start(Arc::new(g), config);
    let requests = vec![
        QueryRequest::node(ids.t1),
        QueryRequest::node(NodeId(9999)), // out of range
        QueryRequest::node(ids.t1).with_measure(Measure::RtrPlus { beta: 2.0 }), // bad β
        QueryRequest::nodes(&[]),         // empty query
        QueryRequest::node(ids.t2).with_measure(Measure::F),
    ];
    let responses = engine.run_requests(&requests);
    assert!(responses[0].result.is_ok());
    assert!(responses[1].result.is_err());
    assert!(responses[2].result.is_err());
    assert!(responses[3].result.is_err());
    assert!(responses[4].result.is_ok());
    // Only the good requests were cached.
    assert_eq!(engine.cache_len(), 2);
}

#[test]
fn tiny_cache_thrashes_but_mixed_traffic_stays_correct() {
    // A 4-entry cache under 5-measure traffic evicts constantly and must
    // never change an answer.
    let (g, ids) = fig2_toy();
    let config = ServeConfig::default()
        .with_topk(TopKConfig {
            k: 4,
            epsilon: 0.0,
            m_f: 4,
            m_t: 2,
            max_expansions: 500,
            ..TopKConfig::default()
        })
        .with_cache_capacity(4)
        .with_cache_shards(2);
    let requests = mixed_requests(&[ids.t1, ids.v2, ids.p[1]]);
    let serial = run_serial_requests(&g, &config, &requests);
    let engine = ServeEngine::start(Arc::new(g), config.with_workers(4));
    let pooled = engine.run_requests(&requests);
    assert_responses_identical("thrashing mixed cache", &pooled, &serial);
    let stats = engine.cache_stats().expect("cache on");
    assert!(stats.evictions > 0, "capacity 4 must evict, got {stats:?}");
}
