//! Golden-value pinning of the paper's Fig. 2 toy graph scores.
//!
//! These constants are the exact F-Rank, T-Rank and RoundTripRank values the
//! iterative engines produce on `fig2_toy()` with default parameters
//! (α = 0.25, the paper's experimental setting). They exist so that future
//! engine refactors — new fixed-point orderings, caching layers, SIMD —
//! cannot *silently* shift the numbers behind the paper's Fig. 4 story. If a
//! refactor changes them deliberately (e.g. a tighter convergence
//! threshold), update the constants in the same PR and say why.
//!
//! The qualitative assertions at the bottom restate the paper's Sect. III-A
//! narrative: v2 (balanced venue) must beat both v1 (important, unspecific)
//! and v3 (specific, unimportant) under RoundTripRank, while F-Rank alone
//! prefers v1 and T-Rank alone ties v2 with v3.

use rtr_core::prelude::*;
use rtr_graph::toy::fig2_toy;
use rtr_graph::NodeId;

/// `(name, f, t, r)` for every node of the Fig. 2 toy, query = t1.
#[rustfmt::skip]
const GOLDEN: [(&str, f64, f64, f64); 12] = [
    ("t1", 3.975310647640993e-1, 3.975310650146587e-1, 1.580309475520837e-1),
    ("t2", 1.318322043706469e-2, 3.295805134318025e-2, 4.344932560332411e-4),
    ("p1", 7.226357938564468e-2, 1.806589485843735e-1, 1.305506227275397e-2),
    ("p2", 7.226357938564468e-2, 1.806589485843735e-1, 1.305506227275397e-2),
    ("p3", 8.296300478686622e-2, 2.074075120874371e-1, 1.720715041814206e-2),
    ("p4", 8.296300478686622e-2, 2.074075120874371e-1, 1.720715041814206e-2),
    ("p5", 8.296300478686622e-2, 2.074075120874371e-1, 1.720715041814206e-2),
    ("p6", 1.757762733492902e-2, 4.394406845757366e-2, 7.724324589278391e-4),
    ("p7", 1.757762733492902e-2, 4.394406845757366e-2, 7.724324589278391e-4),
    ("v1", 6.738090491215876e-2, 8.422613139073017e-2, 5.675232950357779e-3),
    ("v2", 6.222225352600352e-2, 1.555556340655778e-1, 9.679022100226612e-3),
    ("v3", 3.111112676300176e-2, 1.555556340655778e-1, 4.839511050113306e-3),
];

const TOL: f64 = 1e-12;

fn toy_nodes() -> (rtr_graph::Graph, Vec<NodeId>, rtr_graph::toy::Fig2Ids) {
    let (g, ids) = fig2_toy();
    let nodes = std::iter::once(ids.t1)
        .chain(std::iter::once(ids.t2))
        .chain(ids.p.iter().copied())
        .chain([ids.v1, ids.v2, ids.v3])
        .collect();
    (g, nodes, ids)
}

#[test]
fn fig2_scores_match_golden_constants() {
    let (g, nodes, ids) = toy_nodes();
    let params = RankParams::default();
    let q = Query::single(ids.t1);
    let f = FRank::new(params).compute(&g, &q).unwrap();
    let t = TRank::new(params).compute(&g, &q).unwrap();
    let r = RoundTripRank::new(params).compute(&g, &q).unwrap();
    for (&(name, gf, gt, gr), &v) in GOLDEN.iter().zip(&nodes) {
        assert!(
            (f.score(v) - gf).abs() < TOL,
            "F-Rank({name}) drifted: got {:.15e}, golden {gf:.15e}",
            f.score(v)
        );
        assert!(
            (t.score(v) - gt).abs() < TOL,
            "T-Rank({name}) drifted: got {:.15e}, golden {gt:.15e}",
            t.score(v)
        );
        assert!(
            (r.score(v) - gr).abs() < TOL,
            "RoundTripRank({name}) drifted: got {:.15e}, golden {gr:.15e}",
            r.score(v)
        );
    }
}

#[test]
fn fig2_venue_story_holds() {
    let (g, _, ids) = toy_nodes();
    let params = RankParams::default();
    let q = Query::single(ids.t1);
    let f = FRank::new(params).compute(&g, &q).unwrap();
    let t = TRank::new(params).compute(&g, &q).unwrap();
    let r = RoundTripRank::new(params).compute(&g, &q).unwrap();
    // F-Rank (importance alone) prefers the flagship v1 over the niche v3.
    assert!(f.score(ids.v1) > f.score(ids.v3));
    // T-Rank (specificity alone) cannot separate v2 from v3.
    assert!((t.score(ids.v2) - t.score(ids.v3)).abs() < TOL);
    // RoundTripRank puts the balanced v2 on top of both.
    assert!(r.score(ids.v2) > r.score(ids.v1));
    assert!(r.score(ids.v2) > r.score(ids.v3));
}

#[test]
fn fig2_golden_f_times_t_is_proportional_to_r() {
    // Prop. 2: r ∝ f·t. The golden table itself must satisfy the paper's
    // decomposition, with one shared normalization constant.
    let ratio0 = GOLDEN[0].3 / (GOLDEN[0].1 * GOLDEN[0].2);
    for &(name, gf, gt, gr) in &GOLDEN {
        let ratio = gr / (gf * gt);
        assert!(
            (ratio - ratio0).abs() < 1e-6 * ratio0.abs(),
            "decomposition broken at {name}: ratio {ratio} vs {ratio0}"
        );
    }
}
