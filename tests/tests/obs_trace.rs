//! Per-query trace invariants through a live `ServeEngine`: with
//! [`ServeConfig::tracing`] on, every response carries a timeline whose
//! events are monotone in time, begin at `Submit` (t = 0), end at
//! `Respond`, and whose span agrees with the response's own
//! queue-wait + compute split; with tracing off (the default), no
//! response allocates a trace.

use rtr_datagen::{QLog, QLogConfig};
use rtr_graph::NodeId;
use rtr_integration_tests::SEED;
use rtr_serve::{QueryRequest, ServeConfig, ServeEngine, TraceStage};
use rtr_topk::TopKConfig;
use std::sync::Arc;
use std::time::Duration;

/// Generous slack for comparing two independently clocked spans (the
/// trace's own origin vs the engine's latency split). The points being
/// bridged are microseconds apart in practice; the slack only has to
/// absorb a preempted thread on a loaded CI box.
const CLOCK_SLACK: Duration = Duration::from_millis(250);

fn engine(tracing: bool, workers: usize) -> (ServeEngine, Vec<NodeId>) {
    let log = QLog::generate(&QLogConfig::tiny(), SEED);
    let queries: Vec<NodeId> = log
        .phrases
        .iter()
        .copied()
        .filter(|&v| !log.graph.is_dangling(v))
        .take(24)
        .collect();
    let config = ServeConfig {
        workers,
        topk: TopKConfig {
            k: 5,
            epsilon: 0.01,
            ..TopKConfig::default()
        },
        ..ServeConfig::default()
    }
    .with_tracing(tracing)
    .with_metrics(tracing);
    (ServeEngine::start(Arc::new(log.graph), config), queries)
}

#[test]
fn traced_timelines_are_monotone_and_bracket_the_latency_split() {
    let (engine, queries) = engine(true, 2);
    let requests: Vec<QueryRequest> = queries.iter().map(|&q| QueryRequest::node(q)).collect();
    let responses = engine.run_requests(&requests);
    assert_eq!(responses.len(), requests.len());
    for r in &responses {
        let trace = r.trace.as_ref().expect("tracing on must attach a trace");
        let events = trace.events();
        assert!(events.len() >= 2, "at least Submit and Respond");
        assert_eq!(events.first().unwrap().stage, TraceStage::Submit);
        assert_eq!(events.first().unwrap().at, Duration::ZERO);
        assert_eq!(events.last().unwrap().stage, TraceStage::Respond);
        for pair in events.windows(2) {
            assert!(
                pair[0].at <= pair[1].at,
                "stages out of order: {:?} at {:?} then {:?} at {:?}",
                pair[0].stage,
                pair[0].at,
                pair[1].stage,
                pair[1].at
            );
        }
        // The trace spans submit → respond; the response's split measures
        // the same interval on its own clock. They must agree up to slack.
        let span = events.last().unwrap().at;
        let split = r.queue_wait + r.compute;
        assert!(
            span + CLOCK_SLACK >= split && split + CLOCK_SLACK >= span,
            "trace span {span:?} disagrees with queue+compute {split:?}"
        );
        // The stage durations partition the span: each consecutive gap is
        // non-negative (monotonicity above) and they sum to exactly the
        // end-to-end trace latency.
        let summed: Duration = events.windows(2).map(|pair| pair[1].at - pair[0].at).sum();
        assert_eq!(summed, span, "stage gaps must sum to the trace span");
        // Compute is bracketed by its trace stages.
        let start = trace.stage_at(TraceStage::ComputeStart);
        let end = trace.stage_at(TraceStage::ComputeEnd);
        if let (Some(start), Some(end)) = (start, end) {
            assert!(end >= start);
            assert!(
                end - start <= r.compute + CLOCK_SLACK,
                "traced compute {:?} exceeds measured compute {:?}",
                end - start,
                r.compute
            );
        }
    }
}

#[test]
fn queued_requests_record_a_scheduler_stage() {
    let (engine, queries) = engine(true, 2);
    // k > 0 requests never take the submit-side fast path, so every one
    // of these queued and must show a Dequeue or Steal stage.
    let requests: Vec<QueryRequest> = queries.iter().map(|&q| QueryRequest::node(q)).collect();
    for r in engine.run_requests(&requests) {
        let trace = r.trace.as_ref().expect("trace");
        if r.worker.is_some() {
            assert!(
                trace.count(TraceStage::Dequeue) + trace.count(TraceStage::Steal) == 1,
                "a queued request is picked up exactly once"
            );
            assert_eq!(trace.count(TraceStage::FastPath), 0);
        } else {
            assert_eq!(trace.count(TraceStage::FastPath), 1);
        }
    }
}

#[test]
fn tracing_off_attaches_nothing() {
    let (engine, queries) = engine(false, 2);
    let requests: Vec<QueryRequest> = queries.iter().map(|&q| QueryRequest::node(q)).collect();
    for r in engine.run_requests(&requests) {
        assert!(r.trace.is_none(), "tracing off must not allocate traces");
    }
}
