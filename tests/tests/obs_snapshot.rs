//! End-to-end reconciliation of `ServeEngine::metrics_snapshot()` against
//! ground truth the responses themselves carry: a mixed-measure run on the
//! distributed backend (cache off, so every response computes) must
//! produce a snapshot whose counters and histograms agree exactly with the
//! per-response stats, and whose Prometheus rendering is structurally
//! valid and covers the scheduler, cache, and distributed layers.

use rtr_datagen::{BibNet, BibNetConfig};
use rtr_graph::{Graph, NodeId};
use rtr_integration_tests::SEED;
use rtr_serve::{Backend, Measure, QueryRequest, ServeConfig, ServeEngine, TraceStage};
use rtr_topk::TopKConfig;
use std::sync::Arc;

fn test_graph() -> (Arc<Graph>, Vec<NodeId>) {
    let net = BibNet::generate(&BibNetConfig::tiny(), SEED);
    let queries: Vec<NodeId> = net
        .graph
        .nodes()
        .filter(|&v| !net.graph.is_dangling(v))
        .take(10)
        .collect();
    (Arc::new(net.graph), queries)
}

/// Every measure through one pool: F and T exercise the distributed
/// backend's recorded local fallback, RTR and RTR+ run genuinely
/// distributed.
fn mixed_requests(queries: &[NodeId]) -> Vec<QueryRequest> {
    queries
        .iter()
        .enumerate()
        .map(|(i, &q)| {
            let r = QueryRequest::node(q).with_k(4);
            match i % 4 {
                0 => r.with_measure(Measure::F),
                1 => r.with_measure(Measure::T),
                2 => r.with_measure(Measure::RtrPlus { beta: 0.5 }),
                _ => r, // RoundTripRank
            }
        })
        .collect()
}

fn base_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        topk: TopKConfig {
            k: 4,
            epsilon: 0.01,
            ..TopKConfig::default()
        },
        ..ServeConfig::default()
    }
    .with_backend(Backend::Distributed { gps: 2 })
    .with_metrics(true)
    .with_tracing(true)
}

#[test]
fn snapshot_reconciles_with_per_response_stats() {
    let (g, queries) = test_graph();
    let requests = mixed_requests(&queries);
    let engine = ServeEngine::start(g, base_config());
    let responses = engine.run_requests(&requests);
    let snap = engine.metrics_snapshot();

    // Cache off: every response is a fresh computation.
    assert!(responses.iter().all(|r| !r.from_cache));
    for r in &responses {
        r.result.as_ref().expect("mixed request failed");
    }

    // Responses served == latency samples recorded, in total and by
    // measure label.
    let n = responses.len() as u64;
    assert_eq!(snap.counter_total("rtr_serve_responses_total"), n);
    assert_eq!(snap.histogram_total("rtr_serve_latency_seconds").count(), n);
    let f_served = responses
        .iter()
        .filter(|r| r.request.measure == Measure::F)
        .count() as u64;
    assert_eq!(
        snap.counter_value("rtr_serve_responses_total", &[("measure", "f")]),
        Some(f_served)
    );

    // Wire cost: the registry's totals are exactly the per-response
    // DistributedStats, summed (fallback responses carry none and add
    // nothing).
    let stats: Vec<_> = responses.iter().filter_map(|r| r.distributed).collect();
    assert!(!stats.is_empty(), "RTR/RTR+ must run genuinely distributed");
    let wire_bytes: u64 = stats.iter().map(|s| s.bytes_transferred as u64).sum();
    let rounds: u64 = stats.iter().map(|s| s.fetch_requests as u64).sum();
    assert_eq!(snap.counter_total("rtr_dist_wire_bytes_total"), wire_bytes);
    assert_eq!(snap.counter_total("rtr_dist_fetch_rounds_total"), rounds);

    // The trace agrees with the stats response by response: one FetchRound
    // event per wire round.
    for r in &responses {
        if let Some(s) = r.distributed {
            let trace = r.trace.as_ref().expect("tracing on");
            assert_eq!(
                trace.count(TraceStage::FetchRound),
                s.fetch_requests,
                "trace rounds vs stats for {:?}",
                r.request.query.nodes()
            );
        }
    }

    // Routed-fallback accounting matches the response flags.
    let fallbacks = responses.iter().filter(|r| r.routed_fallback).count() as u64;
    assert_eq!(
        snap.counter_total("rtr_serve_routed_fallback_total"),
        fallbacks
    );
    // No errors on this workload.
    assert_eq!(snap.counter_total("rtr_serve_errors_total"), 0);
}

/// Minimal structural validation of the Prometheus exposition text:
/// every family leads with `# HELP` then `# TYPE`, every sample line
/// carries a finite numeric value, and each histogram series' cumulative
/// buckets are non-decreasing with the trailing `le="+Inf"` bucket equal
/// to its `_count` line. Relies on the renderer's documented order —
/// buckets, then `_sum`, then `_count`, per series.
fn validate_prometheus(text: &str) {
    use std::collections::{HashMap, HashSet};
    let mut helped: HashSet<&str> = HashSet::new();
    let mut typed: HashMap<&str, &str> = HashMap::new();
    // Cumulative buckets of the histogram series currently being walked
    // (the renderer emits each series as one contiguous block).
    let mut bucket_prefix = String::new();
    let mut bucket_vals: Vec<f64> = Vec::new();
    for line in text.lines().filter(|l| !l.is_empty()) {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            helped.insert(rest.split_whitespace().next().expect("HELP name"));
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE name");
            let kind = it.next().expect("TYPE kind");
            assert!(helped.contains(name), "TYPE before HELP for {name}");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown TYPE {kind} for {name}"
            );
            typed.insert(name, kind);
            continue;
        }
        // Sample line: `name{labels} value` or `name value`.
        let (series, value) = line.rsplit_once(' ').expect("sample line");
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable sample value in: {line}"));
        assert!(value.is_finite(), "non-finite sample: {line}");
        let name = series.split('{').next().expect("series name");
        let family = name
            .trim_end_matches("_bucket")
            .trim_end_matches("_count")
            .trim_end_matches("_sum");
        assert!(typed.contains_key(family), "sample {name} has no TYPE");
        if name.ends_with("_bucket") {
            // Everything before the `le=...` label identifies the series.
            let prefix = series
                .split("le=")
                .next()
                .expect("bucket series")
                .to_owned();
            if prefix != bucket_prefix {
                assert!(
                    bucket_vals.is_empty(),
                    "series {bucket_prefix} ended without a _count line"
                );
                bucket_prefix = prefix;
            }
            if let Some(&prev) = bucket_vals.last() {
                assert!(prev <= value, "cumulative buckets decrease in {series}");
            }
            bucket_vals.push(value);
        } else if name.ends_with("_count") {
            let inf = bucket_vals.last().copied().expect("count without buckets");
            assert_eq!(inf, value, "le=\"+Inf\" bucket != count for {series}");
            bucket_vals.clear();
        }
    }
    assert!(bucket_vals.is_empty(), "trailing buckets without a _count");
    assert!(!typed.is_empty(), "no TYPE lines rendered");
}

#[test]
fn prometheus_rendering_is_valid_and_covers_every_layer() {
    let (g, queries) = test_graph();
    let requests = mixed_requests(&queries);
    let engine = ServeEngine::start(g, base_config().with_cache_capacity(64));
    let _ = engine.run_requests(&requests);
    // A second pass so the result cache has hits to report.
    let _ = engine.run_requests(&requests);
    let text = engine.metrics_snapshot().to_prometheus();
    validate_prometheus(&text);
    // One catalog spanning all three wired layers.
    for name in [
        "rtr_serve_responses_total",
        "rtr_serve_latency_seconds",
        "rtr_serve_queue_wait_seconds",
        "rtr_cache_hits_total",
        "rtr_cache_entries",
        "rtr_dist_wire_bytes_total",
        "rtr_dist_block_cache_hits_total",
    ] {
        assert!(
            text.contains(&format!("# TYPE {name}")),
            "Prometheus text missing {name}"
        );
    }
}

#[test]
fn snapshot_distinguishes_cache_disabled_from_idle() {
    let (g, _) = test_graph();
    // Cache disabled: stats are None forever, and the snapshot says so.
    let disabled = ServeEngine::start(Arc::clone(&g), base_config());
    assert!(disabled.cache_stats().is_none());
    assert_eq!(
        disabled
            .metrics_snapshot()
            .gauge_value("rtr_serve_cache_enabled", &[]),
        Some(0)
    );
    // Cache enabled but idle: zeroed stats, and the snapshot's gauge flips.
    let idle = ServeEngine::start(g, base_config().with_cache_capacity(16));
    let stats = idle.cache_stats().expect("enabled cache reports stats");
    assert_eq!(stats.hits + stats.misses, 0, "idle cache saw no traffic");
    assert_eq!(
        idle.metrics_snapshot()
            .gauge_value("rtr_serve_cache_enabled", &[]),
        Some(1)
    );
}
