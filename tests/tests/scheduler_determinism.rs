//! Scheduler-matrix determinism suite.
//!
//! PR 7 replaced the single shared job channel with a work-stealing
//! scheduler (per-worker deques + a global injector) plus a size-aware
//! fast path that completes cache hits and trivial requests on the
//! *submitting* thread, and batches identical in-flight requests behind
//! one computation. None of that may change a single bit of output: every
//! cell of the matrix
//!
//! `{SharedQueue, WorkStealing} × {1, 2, 8 workers} × {cache off, on}`
//!
//! must be bit-identical to [`run_serial_requests`] on the same request
//! stream. The stream is deliberately adversarial for the new scheduler:
//! hot duplicates (attach-batching + single-flight), trivial `k = 0`
//! requests (inline fast path), a heterogeneous measure mix, and a skewed
//! burst that forces stealing at 8 workers on a small queue.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rtr_core::Measure;
use rtr_datagen::{QLog, QLogConfig};
use rtr_graph::NodeId;
use rtr_serve::{
    run_serial_requests, QueryRequest, QueryResponse, SchedulerMode, ServeConfig, ServeEngine,
};
use rtr_topk::TopKConfig;
use std::sync::Arc;

/// Strict comparison: bit-exact `f64` equality, deliberately not an
/// epsilon comparison — determinism means bit-identity.
fn assert_responses_identical(label: &str, got: &[QueryResponse], want: &[QueryResponse]) {
    assert_eq!(got.len(), want.len(), "{label}: batch sizes differ");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.id, w.id, "{label}: ids diverge");
        assert_eq!(g.request, w.request, "{label}: resolved requests diverge");
        let (rg, rw) = (
            g.result.as_ref().expect("query failed"),
            w.result.as_ref().expect("query failed"),
        );
        assert_eq!(rg.ranking, rw.ranking, "{label}: rankings diverge");
        assert_eq!(rg.bounds, rw.bounds, "{label}: bounds diverge");
        assert_eq!(rg.expansions, rw.expansions, "{label}: expansions diverge");
        assert_eq!(rg.converged, rw.converged, "{label}: convergence diverges");
        assert_eq!(rg.active, rw.active, "{label}: active sets diverge");
    }
}

/// A request stream exercising every scheduler path at once: repeats of a
/// small hot pool (cache hits + attach batching), trivial `k = 0` probes
/// (the submit-side fast path), and a measure/k mix (ordinary queued
/// compute).
fn scheduler_stress_requests(nodes: &[NodeId], n: usize, seed: u64) -> Vec<QueryRequest> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let hot: Vec<NodeId> = nodes.iter().copied().take(8).collect();
    (0..n)
        .map(|i| {
            let q = if rng.gen_bool(0.6) {
                hot[rng.gen_range(0..hot.len())]
            } else {
                nodes[rng.gen_range(0..nodes.len())]
            };
            match i % 5 {
                // Trivial: empty ranking, eligible for inline serving.
                0 => QueryRequest::node(q).with_k(0),
                1 => QueryRequest::node(q).with_measure(Measure::RtrPlus { beta: 0.4 }),
                2 => QueryRequest::node(q).with_k(3),
                _ => QueryRequest::node(q),
            }
        })
        .collect()
}

fn qlog_nodes() -> (Arc<rtr_graph::Graph>, Vec<NodeId>) {
    let log = QLog::generate(&QLogConfig::tiny(), 77);
    let mut nodes: Vec<NodeId> = log.phrases.clone();
    nodes.shuffle(&mut ChaCha8Rng::seed_from_u64(7));
    nodes.truncate(24);
    (Arc::new(log.graph), nodes)
}

#[test]
fn scheduler_matrix_is_bit_identical_to_serial() {
    let (g, nodes) = qlog_nodes();
    let base = ServeConfig {
        topk: TopKConfig {
            k: 10,
            epsilon: 0.01,
            ..TopKConfig::default()
        },
        ..ServeConfig::default()
    };
    let requests = scheduler_stress_requests(&nodes, 120, 2013);
    let serial = run_serial_requests(&g, &base, &requests);

    for mode in [SchedulerMode::SharedQueue, SchedulerMode::WorkStealing] {
        for workers in [1, 2, 8] {
            for cache in [0, 512] {
                let label = format!("{mode:?} × {workers} workers × cache {cache}");
                let config = base
                    .with_scheduler(mode)
                    .with_workers(workers)
                    .with_cache_capacity(cache);
                let engine = ServeEngine::start(Arc::clone(&g), config);
                let got = engine.run_requests(&requests);
                assert_responses_identical(&label, &got, &serial);
                engine.shutdown();
            }
        }
    }
}

#[test]
fn fast_path_reports_no_worker_and_queued_requests_report_one() {
    let (g, nodes) = qlog_nodes();
    let config = ServeConfig {
        topk: TopKConfig {
            k: 10,
            epsilon: 0.01,
            ..TopKConfig::default()
        },
        ..ServeConfig::default()
    }
    .with_scheduler(SchedulerMode::WorkStealing)
    .with_workers(2)
    .with_cache_capacity(512);
    let engine = ServeEngine::start(Arc::clone(&g), config);

    // Cold non-trivial query: must be computed by a pool worker.
    let cold = engine.run_requests(&[QueryRequest::node(nodes[0])]);
    assert!(
        cold[0].worker.is_some(),
        "cold compute must name its worker"
    );

    // The repeat is a cache hit: served inline on the submitting thread.
    let hit = engine.run_requests(&[QueryRequest::node(nodes[0])]);
    assert!(hit[0].from_cache, "repeat must hit the cache");
    assert_eq!(hit[0].worker, None, "cache hit must serve inline");

    // Trivial request (k = 0): inline even when it misses the cache.
    let trivial = engine.run_requests(&[QueryRequest::node(nodes[1]).with_k(0)]);
    assert_eq!(trivial[0].worker, None, "trivial request must serve inline");
    engine.shutdown();
}
