//! End-to-end pipeline tests: generator → task construction → measures →
//! metrics, exercising every crate together the way the Fig. 5/9 binaries do.

use rtr_baselines::prelude::*;
use rtr_core::prelude::*;
use rtr_datagen::{BibNet, BibNetConfig, QLog, QLogConfig};
use rtr_eval::tasks::{task1_author, task2_venue, task3_relevant_url, task4_equivalent};
use rtr_eval::{evaluate_measure, sweep_beta_rtr_plus};
use rtr_integration_tests::SEED;

#[test]
fn venue_task_pipeline_recovers_ground_truth() {
    let net = BibNet::generate(&BibNetConfig::tiny(), SEED);
    let split = task2_venue(&net, 25, 0, SEED);
    let eval = evaluate_measure(
        &RoundTripRank::new(RankParams::default()),
        &split.test,
        &[5, 10],
    );
    // With 9 venues and the venue edge removed, random NDCG@5 is ~0.2;
    // RTR must do far better through terms/authors/citations.
    assert!(
        eval.mean_ndcg(5) > 0.35,
        "RTR NDCG@5 = {}",
        eval.mean_ndcg(5)
    );
}

#[test]
fn rtr_beats_closeness_heuristics_on_author_task() {
    let net = BibNet::generate(&BibNetConfig::tiny(), SEED + 1);
    let split = task1_author(&net, 30, 0, SEED);
    let rtr = evaluate_measure(
        &RoundTripRank::new(RankParams::default()),
        &split.test,
        &[5],
    );
    let sim = evaluate_measure(&SimRank::new(SEED), &split.test, &[5]);
    assert!(
        rtr.mean_ndcg(5) > sim.mean_ndcg(5),
        "RTR {} <= SimRank {}",
        rtr.mean_ndcg(5),
        sim.mean_ndcg(5)
    );
}

#[test]
fn equivalent_search_prefers_specificity() {
    // The paper's Task 4 finding: β* > 0.5.
    let qlog = QLog::generate(&QLogConfig::tiny(), SEED);
    let split = task4_equivalent(&qlog, 30, 0, SEED);
    let curve = sweep_beta_rtr_plus(&split.test, &[0.1, 0.5, 0.9], 5, RankParams::default());
    let low = curve[0].1;
    let high = curve[2].1;
    assert!(
        high > low,
        "specificity-leaning β should win on equivalents: {low} vs {high}"
    );
}

#[test]
fn url_task_pipeline_runs_all_dual_measures() {
    let qlog = QLog::generate(&QLogConfig::tiny(), SEED + 2);
    let split = task3_relevant_url(&qlog, 15, 0, SEED);
    let p = RankParams::default();
    let measures: Vec<Box<dyn ProximityMeasure>> = vec![
        Box::new(RoundTripRankPlus::balanced(p)),
        Box::new(TCommute::new(SEED)),
        Box::new(ObjSqrtInv::new()),
        Box::new(HarmonicMean::new(p)),
        Box::new(ArithmeticMean::new(p)),
    ];
    for m in &measures {
        let eval = evaluate_measure(m.as_ref(), &split.test, &[5]);
        let score = eval.mean_ndcg(5);
        assert!(
            (0.0..=1.0).contains(&score),
            "{}: NDCG out of range {score}",
            m.name()
        );
    }
}

#[test]
fn task_graphs_preserve_connectivity_for_queries() {
    // Removing ground-truth edges must never disconnect a query node.
    let net = BibNet::generate(&BibNetConfig::tiny(), SEED + 3);
    for split in [
        task1_author(&net, 40, 0, SEED),
        task2_venue(&net, 40, 0, SEED),
    ] {
        for tq in &split.test.queries {
            let q = tq.query.nodes()[0];
            assert!(split.test.graph.out_degree(q) > 0, "query disconnected");
        }
    }
}
