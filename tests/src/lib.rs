//! Integration-test helper crate: the actual tests live in `tests/tests/`.
//! This library only hosts shared fixtures.

/// A fixed master seed for all integration tests.
pub const SEED: u64 = 20130408; // ICDE 2013, Brisbane: April 8
