//! Bring your own graph: load a tab-separated node/edge list, repair it to
//! irreducibility, and run the online β-weighted top-K (`TwoSBoundPlus`) —
//! the full adoption path for a downstream user with real data.
//!
//! ```sh
//! cargo run -p rtr-examples --bin custom_graph [path/to/graph.tsv]
//! ```
//!
//! Without an argument, a small citation-flavored TSV is generated in a
//! temp file first, so the example is self-contained.

use rtr_core::prelude::*;
use rtr_graph::io::{read_graph, write_graph};
use rtr_graph::prelude::*;
use rtr_topk::prelude::*;
use std::fs::File;

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        // Self-contained demo input: a mini citation web.
        let path = std::env::temp_dir().join("rtr_custom_graph_demo.tsv");
        let (g, _) = rtr_graph::toy::fig2_toy();
        write_graph(&g, File::create(&path).expect("create demo file")).expect("write demo");
        path.to_string_lossy().into_owned()
    });
    println!("loading graph from {path}");
    let g = read_graph(File::open(&path).expect("open input")).expect("parse graph");
    println!("loaded: {} nodes, {} edges", g.node_count(), g.edge_count());

    // Real data is rarely strongly connected; RoundTripRank needs return
    // paths, so repair with low-weight dummy edges (paper Sect. III-B).
    let (g, added) = IrreducibilityRepair::default().repair(&g);
    if added > 0 {
        println!("irreducibility repair added {added} dummy edges");
    }

    // Query the first node with a label, or node 0.
    let q = g
        .nodes()
        .find(|&v| !g.label(v).is_empty())
        .unwrap_or(rtr_graph::NodeId(0));
    println!("query node: {} ({})", q, g.label(q));

    let params = RankParams::default();
    for beta in [0.25, 0.5, 0.75] {
        let topk = TwoSBoundPlus::new(
            params,
            TopKConfig {
                k: 5,
                epsilon: 0.001,
                ..TopKConfig::default()
            },
            beta,
        )
        .expect("β in range")
        .run(&g, q)
        .expect("top-k");
        println!(
            "\nβ = {beta}: top-5 (touched {} of {} nodes, {} expansions)",
            topk.active.active_nodes,
            g.node_count(),
            topk.expansions
        );
        for (v, (lo, hi)) in topk.ranking.iter().zip(&topk.bounds) {
            let label = if g.label(*v).is_empty() {
                format!("{v}")
            } else {
                g.label(*v).to_owned()
            };
            println!("  {label:<28} r_β ∈ [{lo:.3e}, {hi:.3e}]");
        }
    }
}
