//! Venue search (paper Task B / Figs. 1, 6, 7): given a topic as a bundle
//! of term nodes, find matching venues — and see how the three measures
//! disagree.
//!
//! ```sh
//! cargo run --release -p rtr-examples --bin venue_search
//! ```

use rtr_core::prelude::*;
use rtr_datagen::{BibNet, BibNetConfig};

fn main() {
    let net = BibNet::generate(&BibNetConfig::small(), 7);
    let g = &net.graph;
    let params = RankParams::default();
    let venue_ty = net.venue_type();

    // "spatio temporal data" in the synthetic world: three terms of topic 2.
    let topic = 2;
    let terms: Vec<_> = net.topic_terms(topic).into_iter().take(3).collect();
    let query = Query::uniform(&terms);
    println!(
        "query: {:?} (topic {topic})",
        terms.iter().map(|&t| g.label(t)).collect::<Vec<_>>()
    );

    let f = FRank::new(params).compute(g, &query).expect("F-Rank");
    let t = TRank::new(params).compute(g, &query).expect("T-Rank");
    let r = f.hadamard(&t); // r ∝ f·t, Prop. 2

    let show = |name: &str, s: &ScoreVec| {
        println!("\n{name}:");
        for v in s
            .filtered_ranking(g, venue_ty, query.nodes())
            .into_iter()
            .take(5)
        {
            println!("  {:<28} score {:.3e}", g.label(v), s.score(v));
        }
    };
    show("(a) importance only — F-Rank/PPR", &f);
    show("(b) specificity only — T-Rank", &t);
    show("(c) balanced — RoundTripRank", &r);

    // The venue-submission scenario of Task B: important venues are sought
    // after, so bias toward importance with a small β.
    let submit = RoundTripRankPlus::new(params, 0.25)
        .expect("β in range")
        .compute(g, &query)
        .expect("compute");
    show(
        "(d) 'submit my best work' — RoundTripRank+ (β = 0.25)",
        &submit,
    );

    // The background-reading scenario: specific sources preferred.
    let learn = RoundTripRankPlus::new(params, 0.75)
        .expect("β in range")
        .compute(g, &query)
        .expect("compute");
    show(
        "(e) 'build background on the topic' — RoundTripRank+ (β = 0.75)",
        &learn,
    );
}
