//! Quickstart: build a graph, compute RoundTripRank, get a top-K.
//!
//! Uses the paper's own toy bibliographic network (Fig. 2) so the numbers
//! can be checked by hand against the paper's Sect. III.
//!
//! ```sh
//! cargo run -p rtr-examples --bin quickstart
//! ```

use rtr_core::prelude::*;
use rtr_serve::{QueryRequest, ServeConfig, ServeEngine};
use rtr_topk::prelude::*;

fn main() {
    // 1. Build a graph. Here: the paper's Fig. 2 toy network; in your code,
    //    add nodes/edges through GraphBuilder.
    let (g, ids) = rtr_graph::toy::fig2_toy();
    println!(
        "graph: {} nodes, {} directed edges",
        g.node_count(),
        g.edge_count()
    );

    // 2. Pick parameters. α = 0.25 is the paper's setting; walk lengths are
    //    geometric, so F-Rank ≡ Personalized PageRank.
    let params = RankParams::default();

    // 3. Score every node against a query. The query is the term t1; the
    //    three venues differ exactly as the paper describes.
    let query = Query::single(ids.t1);
    let parts = RoundTripRank::new(params)
        .compute_parts(&g, &query)
        .expect("toy graph is well-formed");

    println!(
        "\n        {:>10} {:>10} {:>12}",
        "f (imp.)", "t (spec.)", "r = f·t"
    );
    for (name, v) in [("v1", ids.v1), ("v2", ids.v2), ("v3", ids.v3)] {
        println!(
            "venue {name}: {:>10.4} {:>10.4} {:>12.6}",
            parts.f.score(v),
            parts.t.score(v),
            parts.r.score(v)
        );
    }
    println!(
        "\nv1 is important but unspecific, v3 specific but unimportant;\n\
         v2 balances both and wins — the paper's core claim."
    );
    assert!(parts.r.score(ids.v2) > parts.r.score(ids.v1));
    assert!(parts.r.score(ids.v2) > parts.r.score(ids.v3));

    // 4. Trade importance off against specificity with RoundTripRank+.
    for beta in [0.0, 0.5, 1.0] {
        let scores = RoundTripRankPlus::new(params, beta)
            .expect("β in range")
            .compute(&g, &query)
            .expect("compute");
        let venue_ty = g.types().get("venue").expect("registered");
        let top = scores.filtered_ranking(&g, venue_ty, query.nodes());
        let names: Vec<&str> = top.iter().take(3).map(|&v| g.label(v)).collect();
        println!("β = {beta}: venues ranked {names:?}");
    }

    // 5. Online top-K without touching the whole graph: 2SBound.
    let result = TwoSBound::new(
        params,
        TopKConfig {
            k: 3,
            epsilon: 0.0,
            ..TopKConfig::toy()
        },
    )
    .run(&g, ids.t1)
    .expect("top-k");
    println!(
        "\n2SBound exact top-3 (after {} expansions, active set {} nodes):",
        result.expansions, result.active.active_nodes
    );
    for (v, (lo, hi)) in result.ranking.iter().zip(&result.bounds) {
        println!("  {:<18} r ∈ [{lo:.6}, {hi:.6}]", g.label(*v));
    }

    // 6. Serve it all online: one worker pool answers every measure, with
    //    per-request β and k — that is what self-describing QueryRequests
    //    are for.
    let engine = ServeEngine::start(
        std::sync::Arc::new(g),
        ServeConfig::builder()
            .workers(2)
            .topk(TopKConfig {
                k: 3,
                epsilon: 0.0,
                ..TopKConfig::toy()
            })
            .cache_capacity(256) // repeated requests become O(1) lookups
            .build()
            .expect("valid config"),
    );
    let responses = engine.run_requests(&[
        QueryRequest::node(ids.t1),                          // RoundTripRank
        QueryRequest::node(ids.t1).with_measure(Measure::F), // importance only
        QueryRequest::node(ids.t1).with_measure(Measure::RtrPlus { beta: 0.8 }),
        QueryRequest::nodes(&[ids.t1, ids.t2]).with_k(2), // multi-node query
    ]);
    println!("\none pool, four kinds of proximity query:");
    for r in &responses {
        let g = engine.graph();
        let top: Vec<&str> = r
            .result
            .as_ref()
            .expect("toy queries succeed")
            .ranking
            .iter()
            .map(|&v| g.label(v))
            .collect();
        println!(
            "  {:<28} top-{} {top:?} ({:.0}µs compute)",
            r.request.measure.to_string(),
            r.request.topk.k,
            r.compute.as_secs_f64() * 1e6
        );
    }
}
