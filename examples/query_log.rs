//! Query-log applications (paper Tasks C & D): relevant URLs and equivalent
//! search phrases for the same query phrase, from one graph, with two
//! different trade-offs.
//!
//! Task C wants *important* URLs ("users often prefer important URLs for
//! monetary transactions"); Task D wants *specific* phrases ("equivalent
//! phrases are inherently specific"). Same measure, different β.
//!
//! ```sh
//! cargo run --release -p rtr-examples --bin query_log
//! ```

use rtr_core::prelude::*;
use rtr_datagen::{QLog, QLogConfig};

fn main() {
    let qlog = QLog::generate(&QLogConfig::small(), 23);
    let g = &qlog.graph;
    let params = RankParams::default();

    // Pick a phrase with several equivalents as the user's search.
    let &phrase = qlog
        .phrases
        .iter()
        .find(|&&p| qlog.equivalents(p).len() >= 2)
        .expect("some phrase with equivalents");
    println!("searched phrase: {}", g.label(phrase));

    let query = Query::single(phrase);
    let f = FRank::new(params).compute(g, &query).expect("F-Rank");
    let t = TRank::new(params).compute(g, &query).expect("T-Rank");

    // Task C: relevant URLs, importance-leaning (β < 0.5).
    let urls = RoundTripRankPlus::new(params, 0.3)
        .expect("β in range")
        .blend(&f, &t);
    println!("\nTask C — relevant URLs (β = 0.3, importance-leaning):");
    for v in urls
        .filtered_ranking(g, qlog.url_type(), query.nodes())
        .into_iter()
        .take(5)
    {
        let marker = if qlog.portals.contains(&v) {
            "  [portal]"
        } else {
            ""
        };
        println!("  {}{marker}", g.label(v));
    }

    // Task D: equivalent phrases, specificity-leaning (β > 0.5).
    let phrases = RoundTripRankPlus::new(params, 0.7)
        .expect("β in range")
        .blend(&f, &t);
    println!("\nTask D — equivalent phrases (β = 0.7, specificity-leaning):");
    let truth = qlog.equivalents(phrase);
    for v in phrases
        .filtered_ranking(g, qlog.phrase_type(), query.nodes())
        .into_iter()
        .take(5)
    {
        let marker = if truth.contains(&v) {
            "  [true equivalent]"
        } else {
            ""
        };
        println!("  {}{marker}", g.label(v));
    }

    // Quantify: how many true equivalents land in the top-5 under each β?
    let hits = |scores: &ScoreVec| {
        scores
            .filtered_ranking(g, qlog.phrase_type(), query.nodes())
            .into_iter()
            .take(5)
            .filter(|v| truth.contains(v))
            .count()
    };
    println!(
        "\ntrue equivalents in top-5: β=0.3 → {}, β=0.7 → {} (of {})",
        hits(
            &RoundTripRankPlus::new(params, 0.3)
                .expect("β")
                .blend(&f, &t)
        ),
        hits(
            &RoundTripRankPlus::new(params, 0.7)
                .expect("β")
                .blend(&f, &t)
        ),
        truth.len()
    );
}
