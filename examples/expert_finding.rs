//! Expert finding (paper Task A): given a paper, who should review it?
//!
//! The paper's analysis: "Reviewers balanced between importance and
//! specificity are preferred. An important but broad expert may miss some
//! latest development, while a very specific researcher like a student may
//! lack authoritativeness." — i.e. β ≈ 0.5.
//!
//! Serving-style: the whole β sweep goes through **one** `ServeEngine` as
//! per-request `QueryRequest`s — the pool dispatches each β to the right
//! engine path, so a reviewer-matching service never needs one engine per
//! trade-off setting.
//!
//! ```sh
//! cargo run --release -p rtr-examples --bin expert_finding
//! ```

use rtr_core::prelude::*;
use rtr_datagen::{BibNet, BibNetConfig};
use rtr_serve::{QueryRequest, ServeConfig, ServeEngine};
use rtr_topk::prelude::*;
use std::sync::Arc;

fn main() {
    let net = BibNet::generate(&BibNetConfig::small(), 11);
    let g = Arc::new(net.graph.clone());
    let author_ty = net.author_type();

    // Pick a paper with several authors as the submission under review.
    let (idx, &paper) = net
        .papers
        .iter()
        .enumerate()
        .find(|(i, _)| net.paper_authors[*i].len() >= 2)
        .expect("some multi-author paper");
    println!(
        "submission: {} (topic {}), by {:?}",
        g.label(paper),
        net.paper_topic[idx],
        net.paper_authors[idx]
            .iter()
            .map(|&a| g.label(a))
            .collect::<Vec<_>>()
    );

    // Exclude the paper's own authors — they are conflicted, and in the
    // evaluation protocol they are the reserved ground truth.
    let mut exclude = vec![paper];
    exclude.extend_from_slice(&net.paper_authors[idx]);

    // One pool serves every trade-off. A full ranking (k = |V|) dispatches
    // to the exact engine — zero-width bounds — and we filter to authors.
    let engine = ServeEngine::start(
        Arc::clone(&g),
        ServeConfig::builder()
            .workers(2)
            .build()
            .expect("valid config"),
    );
    let sweeps = [
        ("broad authority (β=0.1)", 0.1),
        ("balanced reviewer (β=0.5)", 0.5),
        ("narrow specialist (β=0.9)", 0.9),
    ];
    let requests: Vec<QueryRequest> = sweeps
        .iter()
        .map(|&(_, beta)| {
            QueryRequest::node(paper)
                .with_measure(Measure::RtrPlus { beta })
                .with_k(g.node_count())
        })
        .collect();
    let responses = engine.run_requests(&requests);

    println!("\nreviewer candidates under different trade-offs:");
    for ((label, _), response) in sweeps.iter().zip(&responses) {
        let ranking = &response.result.as_ref().expect("compute").ranking;
        let names: Vec<&str> = ranking
            .iter()
            .filter(|&&v| g.node_type(v) == author_ty && !exclude.contains(&v))
            .take(4)
            .map(|&v| g.label(v))
            .collect();
        println!("  {label:<28} {names:?}");
    }

    // Online variant through the same pool: a top-K RoundTripRank request
    // runs 2SBound and touches only a neighborhood of the graph — here
    // over *all* node types; filter as needed.
    let response = engine
        .submit(QueryRequest::node(paper).with_topk(TopKConfig::default()))
        .wait();
    let result = response.result.as_ref().expect("top-k");
    println!(
        "\n2SBound touched {} of {} nodes ({:.1}% of the graph, {} expansions)",
        result.active.active_nodes,
        g.node_count(),
        result.active.active_nodes as f64 / g.node_count() as f64 * 100.0,
        result.expansions
    );
}
