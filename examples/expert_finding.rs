//! Expert finding (paper Task A): given a paper, who should review it?
//!
//! The paper's analysis: "Reviewers balanced between importance and
//! specificity are preferred. An important but broad expert may miss some
//! latest development, while a very specific researcher like a student may
//! lack authoritativeness." — i.e. β ≈ 0.5.
//!
//! ```sh
//! cargo run --release -p rtr-examples --bin expert_finding
//! ```

use rtr_core::prelude::*;
use rtr_datagen::{BibNet, BibNetConfig};
use rtr_topk::prelude::*;

fn main() {
    let net = BibNet::generate(&BibNetConfig::small(), 11);
    let g = &net.graph;
    let params = RankParams::default();
    let author_ty = net.author_type();

    // Pick a paper with several authors as the submission under review.
    let (idx, &paper) = net
        .papers
        .iter()
        .enumerate()
        .find(|(i, _)| net.paper_authors[*i].len() >= 2)
        .expect("some multi-author paper");
    println!(
        "submission: {} (topic {}), by {:?}",
        g.label(paper),
        net.paper_topic[idx],
        net.paper_authors[idx]
            .iter()
            .map(|&a| g.label(a))
            .collect::<Vec<_>>()
    );

    let query = Query::single(paper);
    // Exclude the paper's own authors — they are conflicted, and in the
    // evaluation protocol they are the reserved ground truth.
    let mut exclude = vec![paper];
    exclude.extend_from_slice(&net.paper_authors[idx]);

    println!("\nreviewer candidates under different trade-offs:");
    for (label, beta) in [
        ("broad authority (β=0.1)", 0.1),
        ("balanced reviewer (β=0.5)", 0.5),
        ("narrow specialist (β=0.9)", 0.9),
    ] {
        let scores = RoundTripRankPlus::new(params, beta)
            .expect("β in range")
            .compute(g, &query)
            .expect("compute");
        let names: Vec<&str> = scores
            .filtered_ranking(g, author_ty, &exclude)
            .into_iter()
            .take(4)
            .map(|v| g.label(v))
            .collect();
        println!("  {label:<28} {names:?}");
    }

    // Online variant: 2SBound retrieves a top-K list without scoring the
    // whole graph — here over *all* node types; filter as needed.
    let result = TwoSBound::new(params, TopKConfig::default())
        .run(g, paper)
        .expect("top-k");
    println!(
        "\n2SBound touched {} of {} nodes ({:.1}% of the graph, {} expansions)",
        result.active.active_nodes,
        g.node_count(),
        result.active.active_nodes as f64 / g.node_count() as f64 * 100.0,
        result.expansions
    );
}
