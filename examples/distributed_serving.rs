//! Serving through the AP/GP execution backend (paper Sect. V-B): one
//! `ServeEngine` whose workers act as active processors against a 4-GP
//! cluster, answering a heterogeneous request mix — and reporting, per
//! response, which backend actually ran and what the answer cost on the
//! wire.
//!
//! Single-node RTR / RTR+ bound searches run genuinely distributed (the AP
//! fetches node blocks on demand and assembles the active set); F/T exact
//! fixed-points and multi-node reductions take the recorded local
//! fallback. Either way the rankings are bit-identical to local execution
//! — the sample below verifies that against the serial reference.
//!
//! ```sh
//! cargo run --release -p rtr-integration-tests --example distributed_serving
//! ```

use rtr_core::Measure;
use rtr_datagen::{BibNet, BibNetConfig};
use rtr_serve::{
    run_serial_requests, Backend, BackendKind, QueryRequest, ServeConfig, ServeEngine,
};
use rtr_topk::TopKConfig;
use std::sync::Arc;

fn main() {
    // A bibliographic network: venues, papers, terms.
    let net = BibNet::generate(&BibNetConfig::tiny(), 2013);
    let g = Arc::new(net.graph);
    println!(
        "graph: {} nodes / {} edges, striped across 4 GPs",
        g.node_count(),
        g.edge_count()
    );

    // Start the pool on the distributed backend: the graph is striped
    // across 4 graph-processor threads at engine start; every worker
    // drives distributed 2SBound against them. The result cache is shared
    // and backend-agnostic.
    let config = ServeConfig::default()
        .with_workers(4)
        .with_backend(Backend::Distributed { gps: 4 })
        .with_topk(TopKConfig {
            k: 8,
            ..TopKConfig::default()
        })
        .with_cache_capacity(1024);
    let engine = ServeEngine::start(Arc::clone(&g), config);

    // A heterogeneous mix over a few well-connected nodes: RTR and RTR+
    // (distributed), F/T and a multi-node query (recorded local fallback).
    let mut seeds = g.nodes().filter(|&v| g.out_degree(v) >= 3);
    let (a, b, c) = (
        seeds.next().expect("node"),
        seeds.next().expect("node"),
        seeds.next().expect("node"),
    );
    let requests = vec![
        QueryRequest::node(a),
        QueryRequest::node(b).with_measure(Measure::RtrPlus { beta: 0.7 }),
        QueryRequest::node(c).with_measure(Measure::F),
        QueryRequest::node(a).with_measure(Measure::T),
        QueryRequest::nodes(&[a, b]),
        QueryRequest::node(a), // duplicate: served from the shared cache
    ];

    let responses = engine.run_requests(&requests);
    println!(
        "\n{:<28} {:>12} {:>7} {:>12} {:>9}",
        "request", "backend", "cached", "wire KB", "fetches"
    );
    for r in &responses {
        let req = &r.request;
        let label = format!(
            "{:?} {}",
            req.measure,
            if req.query.len() > 1 {
                format!("{} nodes", req.query.len())
            } else {
                g.label(req.query.nodes()[0]).to_owned()
            }
        );
        let (wire, fetches) = r
            .distributed
            .map(|s| {
                (
                    format!("{:.2}", s.bytes_transferred as f64 / 1024.0),
                    s.fetch_requests.to_string(),
                )
            })
            .unwrap_or_else(|| ("-".to_owned(), "-".to_owned()));
        println!(
            "{:<28} {:>12} {:>7} {:>12} {:>9}",
            label,
            r.backend.name(),
            if r.from_cache { "yes" } else { "no" },
            wire,
            fetches
        );
    }

    // Total transfer volume: what this batch cost the (simulated) network.
    let total_bytes: usize = responses
        .iter()
        .filter(|r| !r.from_cache)
        .filter_map(|r| r.distributed.map(|s| s.bytes_transferred))
        .sum();
    println!(
        "\ntotal transfer volume (fresh distributed runs): {:.2} KB",
        total_bytes as f64 / 1024.0
    );

    // Both backends run the same engine code through the shared
    // `AdjacencyAccess` trait, so answers are bit-identical by
    // construction: verify against the serial local reference.
    let serial = run_serial_requests(&g, engine.config(), &requests);
    for (got, want) in responses.iter().zip(&serial) {
        let (got_r, want_r) = (
            got.result.as_ref().expect("served"),
            want.result.as_ref().expect("serial"),
        );
        assert_eq!(got_r.ranking, want_r.ranking);
        assert_eq!(got_r.bounds, want_r.bounds);
    }
    let distributed_runs = responses
        .iter()
        .filter(|r| r.backend == BackendKind::Distributed && !r.from_cache)
        .count();
    println!(
        "verified: all {} responses bit-identical to serial local execution \
         ({distributed_runs} served by the AP/GP cluster)",
        responses.len()
    );
}
