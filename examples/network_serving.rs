//! Serving over a real socket: the `rtr-net` front door in one sitting.
//!
//! Starts a `ServeEngine`, puts a `NetServer` in front of it on a
//! loopback TCP listener, and walks the whole client surface of
//! `docs/PROTOCOL.md`:
//!
//! * binary-framed query round trips (`NetClient::call`), bit-identical
//!   to serial in-process execution,
//! * pipelined `send`/`recv` with positional response pairing,
//! * per-tenant token-bucket admission — a throttled tenant collects
//!   typed `Overloaded` rejections with a retry-after hint while an
//!   unthrottled neighbour on the same server is untouched,
//! * the JSON debug payload mode (one header flag away),
//! * `Ping` liveness and the Prometheus text rendering over a
//!   `MetricsRequest` frame,
//! * graceful shutdown: every accepted request drains, then `Goodbye`.
//!
//! ```sh
//! cargo run --release -p rtr-integration-tests --example network_serving
//! ```

use rtr_datagen::{BibNet, BibNetConfig};
use rtr_net::{AdmissionConfig, NetClient, NetServer, NetServerConfig, TenantPolicy};
use rtr_serve::{run_serial_requests, QueryRequest, ServeConfig, ServeEngine};
use rtr_topk::TopKConfig;
use std::sync::Arc;

fn main() {
    // A bibliographic network and an engine: 2 workers, shared cache.
    let net = BibNet::generate(&BibNetConfig::tiny(), 2013);
    let g = Arc::new(net.graph);
    println!("graph: {} nodes / {} edges", g.node_count(), g.edge_count());

    let config = ServeConfig::default()
        .with_workers(2)
        .with_topk(TopKConfig {
            k: 5,
            ..TopKConfig::default()
        })
        .with_cache_capacity(256);
    let engine = Arc::new(ServeEngine::start(Arc::clone(&g), config));

    // The front door: loopback listener, and a tight token bucket for
    // tenant 7 (2 requests, then ~1 QPS) so the admission demo below has
    // something to bounce off. Tenant 0 stays unlimited.
    let server = NetServer::start(
        Arc::clone(&engine),
        NetServerConfig::default().with_admission(AdmissionConfig::unlimited().with_tenant(
            7,
            TenantPolicy {
                rate_qps: 1.0,
                burst: 2.0,
            },
        )),
    )
    .expect("bind loopback listener");
    let addr = server.local_addr();
    println!("serving on {addr}\n");

    // --- Plain round trips, verified against serial execution. ---------
    let mut seeds = g.nodes().filter(|&v| g.out_degree(v) >= 3);
    let (a, b) = (seeds.next().expect("node"), seeds.next().expect("node"));
    let requests = vec![
        QueryRequest::node(a),
        QueryRequest::node(b),
        QueryRequest::nodes(&[a, b]),
    ];

    let mut client = NetClient::connect(addr).expect("connect");
    println!("{:<16} {:>20} {:>12}", "request", "top-1", "latency ms");
    let mut responses = Vec::new();
    for req in &requests {
        let resp = client.call(req).expect("call").expect("admitted");
        let result = resp.result.as_ref().expect("ranked");
        let top = *result.ranking.first().expect("non-empty top-k");
        println!(
            "{:<16} {:>20} {:>12.3}",
            format!("{} source(s)", req.query().len()),
            g.label(top),
            resp.latency().as_secs_f64() * 1e3
        );
        responses.push(resp);
    }
    let serial = run_serial_requests(&g, engine.config(), &requests);
    for (got, want) in responses.iter().zip(&serial) {
        let (got_r, want_r) = (
            got.result.as_ref().expect("served"),
            want.result.as_ref().expect("serial"),
        );
        assert_eq!(got_r.ranking, want_r.ranking);
        assert_eq!(got_r.bounds, want_r.bounds);
    }
    println!("verified: wire responses bit-identical to serial execution\n");

    // --- Pipelining: send the whole batch, then drain in order. --------
    let ids: Vec<u64> = requests
        .iter()
        .map(|r| client.send(r).expect("send"))
        .collect();
    for want_id in ids {
        let (id, outcome) = client.recv().expect("recv");
        assert_eq!(id, want_id, "per-connection FIFO pairing");
        outcome.expect("admitted");
    }
    println!(
        "pipelined: {} in flight, replies in send order",
        requests.len()
    );

    // --- Admission: tenant 7's bucket holds 2; the rest bounce. --------
    let mut throttled = NetClient::connect(addr).expect("connect").with_tenant(7);
    let (mut admitted, mut overloaded) = (0u32, 0u32);
    for _ in 0..6 {
        match throttled.call(&QueryRequest::node(a)).expect("call") {
            Ok(_) => admitted += 1,
            Err(reject) => {
                assert_eq!(reject.code, rtr_net::ErrorCode::Overloaded);
                assert!(reject.retry_after_ms > 0);
                overloaded += 1;
            }
        }
    }
    // The unthrottled tenant is untouched by its neighbour's rejections.
    client
        .call(&QueryRequest::node(b))
        .expect("call")
        .expect("tenant 0 admitted");
    println!(
        "tenant 7 (1 QPS, burst 2): {admitted} admitted, {overloaded} Overloaded \
         with retry-after; tenant 0 unaffected"
    );

    // --- JSON debug mode: same protocol, readable payloads. ------------
    let mut debug = NetClient::connect(addr).expect("connect").with_json(true);
    let json_resp = debug
        .call(&QueryRequest::node(a))
        .expect("call")
        .expect("admitted");
    assert_eq!(
        json_resp.result.as_ref().expect("ranked").ranking,
        serial[0].result.as_ref().expect("serial").ranking
    );
    println!("json mode: identical ranking through the debug encoding");

    // --- Liveness and metrics frames. -----------------------------------
    client.ping().expect("pong");
    let metrics = client.metrics().expect("metrics");
    let line = metrics
        .lines()
        .find(|l| l.starts_with("rtr_net_requests_admitted_total"))
        .expect("net counters in the registry");
    println!("ping: pong; metrics frame says `{line}`");

    // --- Graceful shutdown: drain, Goodbye, join. -----------------------
    client.goodbye().expect("goodbye");
    throttled.goodbye().expect("goodbye");
    debug.goodbye().expect("goodbye");
    server.shutdown();
    println!("\nserver drained and shut down cleanly");
}
