//! Offline stand-in for `serde`.
//!
//! The workspace annotates public data types with
//! `#[derive(Serialize, Deserialize)]` so a future PR can turn on real
//! serialization by swapping this shim for the registry crate. Offline,
//! the traits are markers and the derives are no-ops.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
