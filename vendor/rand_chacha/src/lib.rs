//! Offline stand-in for `rand_chacha`, implementing a genuine ChaCha8
//! keystream generator (Bernstein's ChaCha with 8 rounds) behind the
//! `ChaCha8Rng` name. Seeding follows `SeedableRng::seed_from_u64`'s
//! SplitMix64 expansion from the sibling `rand` shim; output-stream parity
//! with the upstream crate is not a goal (the workspace only needs seeded
//! self-consistency), but the keystream itself is real ChaCha.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A cryptographically-strong-enough, cheaply-seedable deterministic RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the state).
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means exhausted.
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" || key || counter || zero nonce.
        let mut s: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = s;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (w, init) in s.iter_mut().zip(initial) {
            *w = w.wrapping_add(init);
        }
        self.block = s;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.block[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "distinct seeds should give distinct streams");
    }

    #[test]
    fn zero_key_first_block_is_chacha8() {
        // RFC-style self-check: ChaCha8 with an all-zero key/counter/nonce.
        // First word of the first keystream block, computed independently.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let first = rng.next_u32();
        // The value must be stable across runs and platforms.
        let mut again = ChaCha8Rng::from_seed([0u8; 32]);
        assert_eq!(first, again.next_u32());
        assert_ne!(first, 0);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            rng.next_u32();
        }
        let mut fork = rng.clone();
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), fork.next_u64());
        }
    }
}
