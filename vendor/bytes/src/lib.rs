//! Offline stand-in for the `bytes` crate: `Buf`/`BufMut` cursor traits, a
//! cheaply-cloneable shared [`Bytes`] view, and a growable [`BytesMut`]
//! builder. Only the little-endian accessors the workspace's wire format
//! uses are provided; semantics (panics on overrun, zero-copy `slice`,
//! `freeze`) match upstream.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Read-side cursor over a contiguous byte region.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Read a little-endian `u32`, advancing 4 bytes.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice_inner(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`, advancing 8 bytes.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice_inner(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`, advancing 8 bytes.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice_inner(&mut b);
        b[0]
    }

    /// Copy exactly `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        self.copy_to_slice_inner(dst)
    }

    #[doc(hidden)]
    fn copy_to_slice_inner(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: need {}, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write-side sink for building byte buffers.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// An immutable, cheaply-cloneable, sliceable shared byte buffer.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Length in bytes (of the unread remainder).
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Zero-copy subrange view (indices relative to this view).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range for {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance past end: {cnt} > {}",
            self.len()
        );
        self.start += cnt;
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Pre-allocate `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Reserve space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Discard contents, keeping capacity.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.vec
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u32_le(0xDEADBEEF);
        b.put_f64_le(core::f64::consts::PI);
        b.put_u8(7);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 13);
        assert_eq!(bytes.get_u32_le(), 0xDEADBEEF);
        assert_eq!(bytes.get_f64_le(), core::f64::consts::PI);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_and_zero_copy() {
        let bytes = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = bytes.slice(2..5);
        assert_eq!(mid.as_slice(), &[2, 3, 4]);
        let head = mid.slice(..2);
        assert_eq!(head.as_slice(), &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn short_read_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        b.get_u32_le();
    }
}
