//! Offline stand-in for `criterion`.
//!
//! Keeps the bench sources compiling (and runnable) without the registry
//! crate: `criterion_group!`/`criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and `black_box`. Instead of statistical sampling, each
//! benchmark body is timed over a small fixed number of iterations and the
//! mean is printed — enough to eyeball relative costs and to keep
//! `cargo bench` green end to end.

use std::fmt::Display;
use std::time::Instant;

/// Opaque-to-the-optimizer identity, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Number of timed iterations per benchmark (after one warm-up call).
const ITERS: u32 = 3;

/// The timing context handed to benchmark closures.
pub struct Bencher {
    nanos: f64,
}

impl Bencher {
    /// Time `routine`, keeping its output live through [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.nanos = start.elapsed().as_nanos() as f64 / ITERS as f64;
    }
}

/// A benchmark identifier: function name plus an optional parameter string.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`, like upstream's grouped ids.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{parameter}", name.into()),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Anything accepted where a benchmark id is expected (`&str` or
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Render to the display string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.full
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { nanos: 0.0 };
    f(&mut b);
    if b.nanos >= 1e6 {
        println!("bench {label:<50} {:>12.3} ms", b.nanos / 1e6);
    } else {
        println!("bench {label:<50} {:>12.1} ns", b.nanos);
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, |b| f(b));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into_id()), |b| f(b));
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into_id()), |b| f(b, input));
        self
    }

    /// Close the group (upstream flushes reports here; a no-op offline).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        let mut c = Criterion::default();
        c.bench_function("free", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_function("plain", |b| b.iter(|| black_box(2) * 2));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| x + 1)
        });
        g.finish();
    }
}
