//! Self-tests for the schedule explorer: it must *find* classic races and
//! *pass* their fixed counterparts, deterministically.
#![cfg(feature = "check")]

use loom_shim::model::{explore, explore_result, Config, FailureKind};
use loom_shim::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use loom_shim::sync::{Arc, Condvar, Mutex};
use loom_shim::thread;

/// Two threads doing a non-atomic read-modify-write (separate load and
/// store) race; the explorer must find the lost-update schedule.
#[test]
fn finds_lost_update() {
    let failure = explore_result(Config::default(), || {
        let v = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let v = v.clone();
                thread::spawn(move || {
                    let cur = v.load(Ordering::SeqCst);
                    v.store(cur + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(v.load(Ordering::SeqCst), 2, "lost update");
    })
    .expect_err("explorer must find the lost-update interleaving");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(!failure.schedule.is_empty());
}

/// The same increment under a mutex is correct in every schedule, and the
/// DFS must branch (more than one schedule exists).
#[test]
fn mutex_increments_pass() {
    let report = explore(Config::default(), || {
        let v = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let v = v.clone();
                thread::spawn(move || {
                    *v.lock().unwrap() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*v.lock().unwrap(), 2);
    });
    assert!(
        report.dfs_schedules > 1,
        "DFS explored {}",
        report.dfs_schedules
    );
}

/// Classic lost wakeup: the consumer checks a flag *outside* the mutex,
/// then parks; the producer can slip its set+notify into the window. The
/// explorer must detect the resulting deadlock.
#[test]
fn finds_lost_wakeup() {
    let failure = explore_result(Config::default(), || {
        let state = Arc::new((Mutex::new(()), Condvar::new(), AtomicBool::new(false)));
        let consumer = {
            let state = state.clone();
            thread::spawn(move || {
                let (lock, cv, flag) = &*state;
                if !flag.load(Ordering::SeqCst) {
                    let guard = lock.lock().unwrap();
                    // BUG: flag may have been set (and notified) between
                    // the check above and this wait.
                    let _guard = cv.wait(guard).unwrap();
                }
            })
        };
        let (lock, cv, flag) = &*state;
        flag.store(true, Ordering::SeqCst);
        {
            let _guard = lock.lock().unwrap();
        }
        cv.notify_one();
        consumer.join().unwrap();
    })
    .expect_err("explorer must find the lost-wakeup deadlock");
    assert_eq!(failure.kind, FailureKind::Deadlock);
}

/// The generation-counted fix (mirroring the serve scheduler's `Park`):
/// the consumer snapshots a generation, re-checks it under the mutex, and
/// only sleeps while the generation is unchanged. No schedule deadlocks.
#[test]
fn generation_park_passes() {
    let report = explore(Config::default(), || {
        let state = Arc::new((Mutex::new(0u64), Condvar::new(), AtomicBool::new(false)));
        let consumer = {
            let state = state.clone();
            thread::spawn(move || {
                let (gen, cv, flag) = &*state;
                let seen = *gen.lock().unwrap();
                if !flag.load(Ordering::SeqCst) {
                    let mut guard = gen.lock().unwrap();
                    while *guard == seen {
                        guard = cv.wait(guard).unwrap();
                    }
                }
            })
        };
        let (gen, cv, flag) = &*state;
        flag.store(true, Ordering::SeqCst);
        *gen.lock().unwrap() += 1;
        cv.notify_all();
        consumer.join().unwrap();
    });
    assert!(report.dfs_schedules > 1);
}

/// `notify_one` with several waiters branches over which waiter wakes.
#[test]
fn notify_one_choice_is_explored() {
    let report = explore(Config::default(), || {
        let state = Arc::new((Mutex::new(0u32), Condvar::new()));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let state = state.clone();
                thread::spawn(move || {
                    let (count, cv) = &*state;
                    let mut guard = count.lock().unwrap();
                    while *guard == 0 {
                        guard = cv.wait(guard).unwrap();
                    }
                    *guard -= 1;
                })
            })
            .collect();
        let (count, cv) = &*state;
        *count.lock().unwrap() = 2;
        cv.notify_one();
        cv.notify_one();
        // Both tokens must be consumed in every schedule; a lost waiter
        // would deadlock the joins below.
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(*count.lock().unwrap(), 0);
    });
    assert!(report.dfs_schedules > 1);
}

/// A failing schedule's decision trace replays to the same failure.
#[test]
fn replay_reproduces_failure() {
    let body = || {
        let v = Arc::new(AtomicU64::new(0));
        let v2 = v.clone();
        let h = thread::spawn(move || {
            let cur = v2.load(Ordering::SeqCst);
            v2.store(cur + 1, Ordering::SeqCst);
        });
        let cur = v.load(Ordering::SeqCst);
        v.store(cur + 1, Ordering::SeqCst);
        h.join().unwrap();
        assert_eq!(v.load(Ordering::SeqCst), 2, "lost update");
    };
    let first = explore_result(Config::default(), body).expect_err("must fail");
    let replayed =
        explore_result(Config::replay(first.schedule.clone()), body).expect_err("replay must fail");
    assert_eq!(replayed.kind, first.kind);
    assert_eq!(replayed.schedule, first.schedule);
}

/// With the DFS bound at zero preemptions, the lost update is invisible;
/// the seeded random phase (unbounded preemptions) finds it, and finds
/// the *same* schedule again when re-run with the same seed.
#[test]
fn random_phase_is_seeded_and_deterministic() {
    let body = || {
        let v = Arc::new(AtomicU64::new(0));
        let v2 = v.clone();
        let h = thread::spawn(move || {
            let cur = v2.load(Ordering::SeqCst);
            v2.store(cur + 1, Ordering::SeqCst);
        });
        let cur = v.load(Ordering::SeqCst);
        v.store(cur + 1, Ordering::SeqCst);
        h.join().unwrap();
        assert_eq!(v.load(Ordering::SeqCst), 2, "lost update");
    };
    let config = Config {
        preemption_bound: 0,
        random_schedules: 500,
        seed: 0xDEAD_BEEF,
        ..Config::default()
    };
    let a = explore_result(config.clone(), body).expect_err("random phase must find the race");
    let b = explore_result(config, body).expect_err("random phase must find the race again");
    assert_eq!(a.kind, FailureKind::Panic);
    assert_eq!(
        a.schedule, b.schedule,
        "same seed must find the same schedule"
    );

    // Sanity: with the bound at zero and no random phase, it passes.
    let blind = Config {
        preemption_bound: 0,
        random_schedules: 0,
        ..Config::default()
    };
    explore_result(blind, body).expect("bound-0 DFS cannot see the race");
}

/// Spawn/join pass values through, and `is_finished` + `yield_now`
/// polling loops terminate under the model.
#[test]
fn join_values_and_polling() {
    let report = explore(Config::default(), || {
        let h = thread::spawn(|| 41u64 + 1);
        while !h.is_finished() {
            thread::yield_now();
        }
        assert_eq!(h.join().unwrap(), 42);
    });
    assert!(report.dfs_schedules >= 1);
}

/// Outside a model run the instrumented types are plain std: no
/// controller, real threads, real blocking.
#[test]
fn passthrough_outside_model() {
    let v = Arc::new(Mutex::new(0u64));
    let flag = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let v = v.clone();
            let flag = flag.clone();
            thread::spawn(move || {
                *v.lock().unwrap() += 1;
                flag.store(true, Ordering::Release);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*v.lock().unwrap(), 4);
    // ordering: Acquire pairs with the workers' Release stores.
    assert!(flag.load(Ordering::Acquire));
}
