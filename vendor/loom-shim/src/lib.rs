#![deny(missing_docs)]
//! Offline loom-style deterministic schedule explorer.
//!
//! This crate vendors the subset of [loom]'s idea the workspace needs,
//! with zero dependencies and no unstable features: instrumented
//! [`sync`] and [`thread`] primitives that, under the `check` feature,
//! route every synchronization operation through a controller which
//! enumerates thread interleavings — exhaustive DFS up to a bounded
//! number of preemptions, plus a seeded-random phase sampling beyond the
//! bound. With the feature off, every item is a plain `std` re-export:
//! production builds are untouched.
//!
//! Usage (from a `rtr_check`-featured test):
//!
//! ```
//! # #[cfg(feature = "check")] {
//! use loom_shim::model::{explore, Config};
//! use loom_shim::sync::{Arc, Mutex};
//! use loom_shim::thread;
//!
//! let report = explore(Config::default(), || {
//!     let m = Arc::new(Mutex::new(0u64));
//!     let m2 = m.clone();
//!     let h = thread::spawn(move || *m2.lock().unwrap() += 1);
//!     *m.lock().unwrap() += 1;
//!     h.join().unwrap();
//!     assert_eq!(*m.lock().unwrap(), 2);
//! });
//! assert!(report.dfs_schedules >= 1);
//! # }
//! ```
//!
//! A failing schedule panics with the exact decision sequence; feed it
//! to [`model::Config::replay`] to re-execute it deterministically.
//!
//! [loom]: https://github.com/tokio-rs/loom

#[cfg(feature = "check")]
mod controller;

/// Schedule exploration entry points ([`model::explore`],
/// [`model::Config`], [`model::Report`], [`model::Failure`]). Only
/// present under the `check` feature.
#[cfg(feature = "check")]
pub mod model {
    pub use crate::controller::{explore, explore_result, Config, Failure, FailureKind, Report};
}

pub mod sync;
pub mod thread;
