//! Drop-in `std::sync` surface.
//!
//! With the `check` feature off this is a plain re-export of `std` — zero
//! overhead, byte-identical behavior. With `check` on, `Mutex`, `Condvar`
//! and the atomics become instrumented: inside a model run
//! ([`crate::model::explore`]) every operation is a scheduling decision
//! point; outside a model run they transparently delegate to the real
//! `std` primitive, so incidental feature-on builds stay correct.

#[cfg(not(feature = "check"))]
pub use std::sync::{Arc, Condvar, Mutex};

/// Atomic integer and bool types (plain `std` re-exports when `check` is
/// off).
#[cfg(not(feature = "check"))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(feature = "check")]
pub use checked::{Arc, Condvar, Mutex};

#[cfg(feature = "check")]
pub use checked::atomic;

#[cfg(feature = "check")]
mod checked {
    use crate::controller::{self, Ctx};
    use std::sync::{LockResult, PoisonError, TryLockError};

    pub use std::sync::Arc;

    /// The model context to route an operation through, or `None` for
    /// std-passthrough: either this thread is not part of a model run, or
    /// it is mid-panic (unwinding destructors must not re-enter the
    /// scheduler — the failure is already being recorded).
    fn ctx() -> Option<Ctx> {
        if std::thread::panicking() {
            None
        } else {
            controller::current()
        }
    }

    /// A mutex whose lock/unlock are schedule decision points inside a
    /// model run, and a plain `std::sync::Mutex` otherwise.
    pub struct Mutex<T> {
        id: usize,
        inner: std::sync::Mutex<T>,
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T> Mutex<T> {
        /// Create a mutex protecting `value`.
        pub fn new(value: T) -> Mutex<T> {
            Mutex {
                id: controller::next_object_id(),
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Acquire the mutex, blocking (in model time or real time) until
        /// it is free. Mirrors `std::sync::Mutex::lock`, including the
        /// poison result.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            match ctx() {
                Some(c) => {
                    c.exec.mutex_lock(c.tid, self.id);
                    // The model granted us sole ownership, so the real
                    // lock must be free (model threads run one at a time
                    // and only hold it while they hold model ownership).
                    match self.inner.try_lock() {
                        Ok(g) => Ok(MutexGuard {
                            lock: self,
                            inner: Some(g),
                            ctx: Some(c),
                        }),
                        Err(TryLockError::Poisoned(e)) => Err(PoisonError::new(MutexGuard {
                            lock: self,
                            inner: Some(e.into_inner()),
                            ctx: Some(c),
                        })),
                        Err(TryLockError::WouldBlock) => {
                            unreachable!("model granted a mutex the real lock still holds")
                        }
                    }
                }
                None => match self.inner.lock() {
                    Ok(g) => Ok(MutexGuard {
                        lock: self,
                        inner: Some(g),
                        ctx: None,
                    }),
                    Err(e) => Err(PoisonError::new(MutexGuard {
                        lock: self,
                        inner: Some(e.into_inner()),
                        ctx: None,
                    })),
                },
            }
        }
    }

    /// Guard returned by [`Mutex::lock`]; releases on drop (a decision
    /// point inside a model run).
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
        ctx: Option<Ctx>,
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard already released")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard already released")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(std_guard) = self.inner.take() {
                // Release the real lock before the model hands ownership
                // to a waiter (which immediately try_locks it).
                drop(std_guard);
                if let Some(c) = self.ctx.take() {
                    if !std::thread::panicking() {
                        c.exec.mutex_unlock(c.tid, self.lock.id);
                    }
                }
            }
        }
    }

    /// A condition variable whose wait/notify are schedule decision
    /// points inside a model run (including *which* waiter `notify_one`
    /// wakes), and a plain `std::sync::Condvar` otherwise.
    pub struct Condvar {
        id: usize,
        inner: std::sync::Condvar,
    }

    impl std::fmt::Debug for Condvar {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Condvar::new()
        }
    }

    impl Condvar {
        /// Create a condition variable.
        pub fn new() -> Condvar {
            Condvar {
                id: controller::next_object_id(),
                inner: std::sync::Condvar::new(),
            }
        }

        /// Atomically release `guard`'s mutex and park until notified,
        /// then re-acquire. Mirrors `std::sync::Condvar::wait`.
        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            let lock = guard.lock;
            let std_guard = guard.inner.take().expect("guard already released");
            let guard_ctx = guard.ctx.take();
            drop(guard); // inert: inner and ctx both taken
            match (ctx(), guard_ctx) {
                (Some(c), Some(_)) => {
                    // Release the real lock first so the next model owner
                    // can take it; the controller handles the model-side
                    // release-park-notify-reacquire sequence atomically
                    // with respect to other model threads.
                    drop(std_guard);
                    c.exec.condvar_wait(c.tid, self.id, lock.id);
                    match lock.inner.try_lock() {
                        Ok(g) => Ok(MutexGuard {
                            lock,
                            inner: Some(g),
                            ctx: Some(c),
                        }),
                        Err(TryLockError::Poisoned(e)) => Err(PoisonError::new(MutexGuard {
                            lock,
                            inner: Some(e.into_inner()),
                            ctx: Some(c),
                        })),
                        Err(TryLockError::WouldBlock) => {
                            unreachable!("model granted a mutex the real lock still holds")
                        }
                    }
                }
                _ => match self.inner.wait(std_guard) {
                    Ok(g) => Ok(MutexGuard {
                        lock,
                        inner: Some(g),
                        ctx: None,
                    }),
                    Err(e) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(e.into_inner()),
                        ctx: None,
                    })),
                },
            }
        }

        /// Wake one waiter, if any. In a model run the controller
        /// branches over every possible choice of waiter.
        pub fn notify_one(&self) {
            match ctx() {
                Some(c) => c.exec.notify_one(c.tid, self.id),
                None => self.inner.notify_one(),
            }
        }

        /// Wake every waiter.
        pub fn notify_all(&self) {
            match ctx() {
                Some(c) => c.exec.notify_all(c.tid, self.id),
                None => self.inner.notify_all(),
            }
        }
    }

    /// Atomics whose every operation is a schedule decision point inside
    /// a model run. The requested `Ordering` is passed through to the
    /// underlying `std` atomic, but note the model itself explores
    /// sequentially-consistent interleavings only (operations are
    /// serialized one thread at a time): weak-memory reorderings are out
    /// of scope, which is why every `Ordering::` site in the workspace
    /// must justify itself with an `// ordering:` comment checked by
    /// `rtr-lint`.
    pub mod atomic {
        use super::ctx;

        pub use std::sync::atomic::Ordering;

        macro_rules! instrumented_atomic {
            ($(#[$doc:meta])* $name:ident, $std:ident, $prim:ty) => {
                $(#[$doc])*
                #[derive(Debug, Default)]
                pub struct $name {
                    inner: std::sync::atomic::$std,
                }

                impl $name {
                    /// Create the atomic with an initial value.
                    pub const fn new(value: $prim) -> Self {
                        Self {
                            inner: std::sync::atomic::$std::new(value),
                        }
                    }

                    /// Atomic load (a decision point inside a model run).
                    pub fn load(&self, order: Ordering) -> $prim {
                        if let Some(c) = ctx() {
                            c.exec.yield_point(c.tid);
                        }
                        self.inner.load(order)
                    }

                    /// Atomic store (a decision point inside a model run).
                    pub fn store(&self, value: $prim, order: Ordering) {
                        if let Some(c) = ctx() {
                            c.exec.yield_point(c.tid);
                        }
                        self.inner.store(value, order)
                    }
                }
            };
        }

        instrumented_atomic!(
            /// Instrumented `std::sync::atomic::AtomicU64`.
            AtomicU64,
            AtomicU64,
            u64
        );
        instrumented_atomic!(
            /// Instrumented `std::sync::atomic::AtomicUsize`.
            AtomicUsize,
            AtomicUsize,
            usize
        );
        instrumented_atomic!(
            /// Instrumented `std::sync::atomic::AtomicI64`.
            AtomicI64,
            AtomicI64,
            i64
        );
        instrumented_atomic!(
            /// Instrumented `std::sync::atomic::AtomicBool`.
            AtomicBool,
            AtomicBool,
            bool
        );

        impl AtomicU64 {
            /// Atomic add, returning the previous value (a decision point
            /// inside a model run).
            pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
                if let Some(c) = ctx() {
                    c.exec.yield_point(c.tid);
                }
                self.inner.fetch_add(value, order)
            }
        }

        impl AtomicUsize {
            /// Atomic add, returning the previous value (a decision point
            /// inside a model run).
            pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
                if let Some(c) = ctx() {
                    c.exec.yield_point(c.tid);
                }
                self.inner.fetch_add(value, order)
            }
        }

        impl AtomicI64 {
            /// Atomic add, returning the previous value (a decision point
            /// inside a model run).
            pub fn fetch_add(&self, value: i64, order: Ordering) -> i64 {
                if let Some(c) = ctx() {
                    c.exec.yield_point(c.tid);
                }
                self.inner.fetch_add(value, order)
            }
        }
    }
}
