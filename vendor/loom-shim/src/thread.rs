//! Drop-in `std::thread` surface (`spawn`, `JoinHandle`, `yield_now`).
//!
//! With the `check` feature off this is a plain re-export of `std`. With
//! `check` on, threads spawned inside a model run become model threads:
//! they only execute when the controller grants them, `join` is a
//! blocking decision point, `is_finished` reports model state (so
//! polling loops paired with [`yield_now`] stay explorable), and
//! `yield_now` forces a switch to another runnable thread without
//! spending preemption budget.

#[cfg(not(feature = "check"))]
pub use std::thread::{spawn, yield_now, JoinHandle};

#[cfg(feature = "check")]
pub use checked::{spawn, yield_now, JoinHandle};

#[cfg(feature = "check")]
mod checked {
    use crate::controller::{self, Ctx};
    use std::sync::Arc;

    fn ctx() -> Option<Ctx> {
        if std::thread::panicking() {
            None
        } else {
            controller::current()
        }
    }

    /// Handle to a spawned thread; model-aware inside a model run.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
        /// `Some((exec, tid))` when this thread belongs to a model run.
        model: Option<(Arc<controller::ExecState>, usize)>,
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish and return its result. Inside a
        /// model run this is a blocking decision point; the scheduler
        /// explores every order in which the join can resolve.
        pub fn join(self) -> std::thread::Result<T> {
            if let Some((exec, target)) = &self.model {
                if let Some(c) = ctx() {
                    debug_assert!(Arc::ptr_eq(exec, &c.exec), "join across model executions");
                    c.exec.join(c.tid, *target);
                }
            }
            self.inner.join()
        }

        /// Whether the thread has finished. Inside a model run this
        /// reports the *model* state (not the OS thread) and is itself a
        /// decision point, so `while !h.is_finished() { yield_now() }`
        /// polling loops terminate under exploration.
        pub fn is_finished(&self) -> bool {
            if let Some((exec, target)) = &self.model {
                if let Some(c) = ctx() {
                    debug_assert!(
                        Arc::ptr_eq(exec, &c.exec),
                        "is_finished across model executions"
                    );
                    return c.exec.is_finished(c.tid, *target);
                }
            }
            self.inner.is_finished()
        }
    }

    /// Spawn a thread. Inside a model run the new thread is registered
    /// with the controller and only runs when scheduled.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match ctx() {
            Some(c) => {
                let (tid, inner) = controller::spawn_model(&c, f);
                JoinHandle {
                    inner,
                    model: Some((c.exec, tid)),
                }
            }
            None => JoinHandle {
                inner: std::thread::spawn(f),
                model: None,
            },
        }
    }

    /// Yield the processor. Inside a model run: a voluntary switch — some
    /// *other* runnable thread must run next (if one exists) and no
    /// preemption budget is spent, so `yield_now` spin loops explore
    /// without exploding the schedule space.
    pub fn yield_now() {
        match ctx() {
            Some(c) => c.exec.yield_now(c.tid),
            None => std::thread::yield_now(),
        }
    }
}
