//! The schedule-exploring controller behind the `check` feature.
//!
//! Executions run real OS threads, but **at most one runs at a time**: every
//! instrumented operation (atomic access, mutex lock/unlock, condvar
//! wait/notify, spawn/join/yield) is a *decision point* where the running
//! thread hands control to the controller, which picks who runs next. The
//! interleaving of instrumented operations is therefore fully determined by
//! the sequence of decisions, and the explorer enumerates those sequences:
//!
//! * **DFS phase** — depth-first over the decision tree with a
//!   *bounded-preemption* cap: at a decision point where the current thread
//!   could keep running, switching to another runnable thread counts as a
//!   preemption; once the budget is spent, the current thread must continue.
//!   Forced switches (the current thread blocked or finished) and voluntary
//!   `yield_now` never spend budget. With bound `p` the DFS is exhaustive
//!   over all schedules with at most `p` preemptions.
//! * **Random phase** — seeded uniform scheduling with *no* preemption
//!   bound, sampling the space beyond the DFS cap. Deterministic from the
//!   seed: the same seed explores the same schedules.
//!
//! A failure (panicked thread, deadlock, or step-limit livelock) aborts the
//! execution — every thread is woken and unwound via a private panic
//! payload — and is reported as a [`Failure`] carrying the decision
//! sequence, which [`Config::replay`] re-executes exactly.

use std::collections::HashMap;
use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// How a model run failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure in the test body).
    Panic,
    /// No thread was runnable but not all had finished.
    Deadlock,
    /// One execution exceeded [`Config::max_steps`] decision points
    /// (livelock, e.g. an uninstrumented spin loop).
    StepLimit,
    /// The DFS phase exceeded [`Config::max_dfs_schedules`] executions
    /// without finishing — the modeled protocol is too big to enumerate.
    ScheduleLimit,
}

/// A failing schedule: what went wrong and the exact decision sequence
/// that got there. Feed [`Failure::schedule`] to [`Config::replay`] to
/// re-run it deterministically.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Which invariant the controller tripped on.
    pub kind: FailureKind,
    /// Human-readable detail (panic message, blocked-thread states).
    pub message: String,
    /// The chosen thread id at every decision point of the failing run.
    pub schedule: Vec<usize>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?}: {} — replay with Config::replay(vec!{:?})",
            self.kind, self.message, self.schedule
        )
    }
}

/// What [`explore`] did: how many distinct schedules each phase ran.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Schedules enumerated exhaustively (all interleavings with at most
    /// [`Config::preemption_bound`] preemptions).
    pub dfs_schedules: u64,
    /// Additional seeded-random schedules beyond the bound.
    pub random_schedules: u64,
    /// The seed the random phase ran from (reproduces it exactly).
    pub seed: u64,
    /// The preemption bound the exhaustive phase enumerated up to.
    pub preemption_bound: usize,
}

impl Report {
    /// Total schedules explored across both phases.
    pub fn total(&self) -> u64 {
        self.dfs_schedules + self.random_schedules
    }
}

/// Exploration parameters. The defaults (2 preemptions exhaustive, 0 random
/// schedules) match the repo's CI contract; suites that want deeper
/// sampling raise `random_schedules`.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum preemptions per schedule in the exhaustive DFS phase.
    pub preemption_bound: usize,
    /// Safety cap on DFS executions; exceeding it is a
    /// [`FailureKind::ScheduleLimit`] failure rather than a silent
    /// truncation.
    pub max_dfs_schedules: u64,
    /// Seeded-random schedules to run after the DFS phase.
    pub random_schedules: u64,
    /// Seed for the random phase (and for reporting).
    pub seed: u64,
    /// Per-execution decision-point cap (livelock guard).
    pub max_steps: u64,
    /// When set, run exactly this decision sequence once (from
    /// [`Failure::schedule`]) instead of exploring.
    pub replay: Option<Vec<usize>>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            max_dfs_schedules: 500_000,
            random_schedules: 0,
            seed: 0x1CDE_2013,
            max_steps: 100_000,
            replay: None,
        }
    }
}

impl Config {
    /// The default exhaustive configuration with `random_schedules` extra
    /// seeded schedules from `seed`.
    pub fn with_random(random_schedules: u64, seed: u64) -> Config {
        Config {
            random_schedules,
            seed,
            ..Config::default()
        }
    }

    /// Replay one exact decision sequence (printed by a [`Failure`]).
    pub fn replay(schedule: Vec<usize>) -> Config {
        Config {
            replay: Some(schedule),
            ..Config::default()
        }
    }
}

/// SplitMix64: tiny, seedable, good enough to scatter schedule choices.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Why a thread cannot run right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BlockKind {
    /// Waiting to acquire a model mutex.
    Lock(usize),
    /// Parked on a model condvar.
    Wait(usize),
    /// Joining another model thread.
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TState {
    Runnable,
    Blocked(BlockKind),
    Finished,
}

/// One node of the DFS decision tree: the options that were available and
/// which index the current path takes.
#[derive(Clone, Debug)]
struct Decision {
    options: Vec<usize>,
    chosen: usize,
}

enum Mode {
    /// Exhaustive phase: follow the prescribed prefix, extend with
    /// first-option choices, backtrack between executions.
    Dfs,
    Random(SplitMix64),
    Replay(Vec<usize>),
}

struct Sched {
    threads: Vec<TState>,
    /// The thread currently granted the right to run (`usize::MAX` when
    /// the execution has completed).
    active: usize,
    /// Model mutex ownership: id → owning thread.
    mutexes: HashMap<usize, Option<usize>>,
    /// Model condvar wait lists, in arrival order.
    cv_waiters: HashMap<usize, Vec<usize>>,
    /// DFS tree path (prescription + extensions) for this execution.
    decisions: Vec<Decision>,
    cursor: usize,
    preemptions: usize,
    steps: u64,
    mode: Mode,
    /// Chosen thread per decision, for failure replay output.
    trace: Vec<usize>,
    failure: Option<Failure>,
    aborted: bool,
    finished: usize,
    config: ConfigSnapshot,
}

#[derive(Clone, Copy)]
struct ConfigSnapshot {
    preemption_bound: usize,
    max_steps: u64,
}

/// Shared state of one execution.
pub(crate) struct ExecState {
    sched: StdMutex<Sched>,
    cv: StdCondvar,
}

/// Private panic payload used to unwind threads when an execution aborts.
struct ModelAbort;

fn is_abort(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.downcast_ref::<ModelAbort>().is_some()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// The current thread's attachment to a running model, if any.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<ExecState>,
    pub(crate) tid: usize,
}

/// The model context of the calling thread (`None` outside a model run,
/// which makes every instrumented primitive fall back to plain `std`).
pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Process-global id source for model mutexes and condvars.
pub(crate) fn next_object_id() -> usize {
    static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    // ordering: Relaxed — ids only need to be unique, never ordered.
    NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

impl Sched {
    fn runnable(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, TState::Runnable))
            .map(|(i, _)| i)
            .collect()
    }

    fn fail(&mut self, kind: FailureKind, message: String) {
        if self.failure.is_none() {
            self.failure = Some(Failure {
                kind,
                message,
                schedule: self.trace.clone(),
            });
        }
        self.aborted = true;
    }

    /// Pick one element of `options` according to the exploration mode.
    fn decide(&mut self, options: Vec<usize>) -> usize {
        debug_assert!(!options.is_empty());
        self.steps += 1;
        if self.steps > self.config.max_steps {
            self.fail(
                FailureKind::StepLimit,
                format!(
                    "execution exceeded {} decision points",
                    self.config.max_steps
                ),
            );
            return options[0];
        }
        let idx = match &mut self.mode {
            Mode::Dfs => {
                if self.cursor < self.decisions.len() {
                    let d = &self.decisions[self.cursor];
                    debug_assert_eq!(
                        d.options, options,
                        "nondeterministic execution: decision {} options changed",
                        self.cursor
                    );
                    d.chosen
                } else {
                    self.decisions.push(Decision {
                        options: options.clone(),
                        chosen: 0,
                    });
                    0
                }
            }
            Mode::Random(rng) => (rng.next() as usize) % options.len(),
            Mode::Replay(schedule) => {
                let want = schedule.get(self.cursor).copied();
                match want.and_then(|w| options.iter().position(|&o| o == w)) {
                    Some(i) => i,
                    None => {
                        self.fail(
                            FailureKind::Deadlock,
                            format!(
                                "replay diverged at decision {}: wanted {:?}, options {:?}",
                                self.cursor, want, options
                            ),
                        );
                        0
                    }
                }
            }
        };
        self.cursor += 1;
        self.trace.push(options[idx]);
        options[idx]
    }

    /// Decide who runs next, after `me` updated its own state.
    /// `voluntary` marks a `yield_now`, which deprioritizes `me` without
    /// spending preemption budget.
    fn pick_next(&mut self, me: usize, voluntary: bool) {
        if self.aborted {
            return;
        }
        let runnable = self.runnable();
        if runnable.is_empty() {
            if self.finished == self.threads.len() {
                self.active = usize::MAX;
            } else {
                let states: Vec<String> = self
                    .threads
                    .iter()
                    .enumerate()
                    .map(|(i, s)| format!("t{i}={s:?}"))
                    .collect();
                self.fail(
                    FailureKind::Deadlock,
                    format!("deadlock: no runnable thread ({})", states.join(", ")),
                );
            }
            return;
        }
        let me_runnable = matches!(self.threads.get(me), Some(TState::Runnable));
        let options: Vec<usize> = if voluntary && me_runnable {
            let others: Vec<usize> = runnable.iter().copied().filter(|&t| t != me).collect();
            if others.is_empty() {
                vec![me]
            } else {
                others
            }
        } else if me_runnable {
            if self.preemptions < self.config.preemption_bound {
                // Current thread first: option 0 (the DFS default) is
                // "keep running", so preemptions are the branches.
                let mut opts = vec![me];
                opts.extend(runnable.iter().copied().filter(|&t| t != me));
                opts
            } else {
                vec![me]
            }
        } else {
            runnable
        };
        let chosen = self.decide(options);
        if me_runnable && !voluntary && chosen != me {
            self.preemptions += 1;
        }
        self.active = chosen;
    }
}

impl ExecState {
    fn new(config: &Config, mode: Mode, prescription: Vec<Decision>) -> Arc<ExecState> {
        Arc::new(ExecState {
            sched: StdMutex::new(Sched {
                threads: vec![TState::Runnable],
                active: 0,
                mutexes: HashMap::new(),
                cv_waiters: HashMap::new(),
                decisions: prescription,
                cursor: 0,
                preemptions: 0,
                steps: 0,
                mode,
                trace: Vec::new(),
                failure: None,
                aborted: false,
                finished: 0,
                config: ConfigSnapshot {
                    preemption_bound: config.preemption_bound,
                    max_steps: config.max_steps,
                },
            }),
            cv: self::StdCondvar::new(),
        })
    }

    fn lock(&self) -> StdMutexGuard<'_, Sched> {
        // The sched mutex is only ever poisoned if the controller itself
        // panicked while holding it; recover the guard so the remaining
        // threads can still unwind instead of deadlocking the test binary.
        self.sched.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Abort-aware unwind out of user code.
    fn abort_unwind(&self) -> ! {
        self.cv.notify_all();
        panic_any(ModelAbort)
    }

    /// Run the scheduler after `me` updated its state, then block until
    /// `me` is granted again (returns immediately if `me` wins the pick).
    /// Panics with the abort payload when the execution is being torn
    /// down.
    fn schedule_and_wait<'a>(
        &'a self,
        mut g: StdMutexGuard<'a, Sched>,
        me: usize,
        voluntary: bool,
    ) -> StdMutexGuard<'a, Sched> {
        g.pick_next(me, voluntary);
        self.cv.notify_all();
        loop {
            if g.aborted {
                drop(g);
                self.abort_unwind();
            }
            if g.active == me && matches!(g.threads[me], TState::Runnable) {
                return g;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A plain decision point before an instrumented operation.
    pub(crate) fn yield_point(&self, me: usize) {
        let g = self.lock();
        if g.aborted {
            drop(g);
            self.abort_unwind();
        }
        let g = self.schedule_and_wait(g, me, false);
        drop(g);
    }

    /// A voluntary yield: another runnable thread (if any) must run.
    pub(crate) fn yield_now(&self, me: usize) {
        let g = self.lock();
        if g.aborted {
            drop(g);
            self.abort_unwind();
        }
        let g = self.schedule_and_wait(g, me, true);
        drop(g);
    }

    /// Model-acquire mutex `id` (blocking until free).
    pub(crate) fn mutex_lock(&self, me: usize, id: usize) {
        let g = self.lock();
        if g.aborted {
            drop(g);
            self.abort_unwind();
        }
        let mut g = self.schedule_and_wait(g, me, false);
        loop {
            let owner = g.mutexes.entry(id).or_insert(None);
            if owner.is_none() {
                *owner = Some(me);
                return;
            }
            g.threads[me] = TState::Blocked(BlockKind::Lock(id));
            g = self.schedule_and_wait(g, me, false);
        }
    }

    /// Model-release mutex `id`, waking every thread blocked on it (they
    /// contend again when scheduled). A no-op during abort teardown.
    pub(crate) fn mutex_unlock(&self, me: usize, id: usize) {
        let mut g = self.lock();
        if g.aborted {
            return;
        }
        g.mutexes.insert(id, None);
        for t in 0..g.threads.len() {
            if g.threads[t] == TState::Blocked(BlockKind::Lock(id)) {
                g.threads[t] = TState::Runnable;
            }
        }
        let g = self.schedule_and_wait(g, me, false);
        drop(g);
    }

    /// Model condvar wait: release `mutex_id`, park on `cv_id`, and after a
    /// notification re-acquire `mutex_id`. The caller must have dropped the
    /// real guard before calling and re-locks the real mutex after.
    pub(crate) fn condvar_wait(&self, me: usize, cv_id: usize, mutex_id: usize) {
        {
            let mut g = self.lock();
            if g.aborted {
                drop(g);
                self.abort_unwind();
            }
            g.mutexes.insert(mutex_id, None);
            for t in 0..g.threads.len() {
                if g.threads[t] == TState::Blocked(BlockKind::Lock(mutex_id)) {
                    g.threads[t] = TState::Runnable;
                }
            }
            g.cv_waiters.entry(cv_id).or_default().push(me);
            g.threads[me] = TState::Blocked(BlockKind::Wait(cv_id));
            let g = self.schedule_and_wait(g, me, false);
            drop(g);
        }
        self.mutex_lock(me, mutex_id);
    }

    /// Wake one waiter of `cv_id`. *Which* waiter is itself a decision
    /// point: real condvars make no ordering promise, so the explorer
    /// branches over every choice.
    pub(crate) fn notify_one(&self, me: usize, cv_id: usize) {
        let g = self.lock();
        if g.aborted {
            return;
        }
        let mut g = self.schedule_and_wait(g, me, false);
        let waiters = g.cv_waiters.get(&cv_id).cloned().unwrap_or_default();
        if waiters.is_empty() {
            return;
        }
        let chosen = if waiters.len() == 1 {
            waiters[0]
        } else {
            g.decide(waiters)
        };
        if let Some(list) = g.cv_waiters.get_mut(&cv_id) {
            list.retain(|&t| t != chosen);
        }
        g.threads[chosen] = TState::Runnable;
        drop(g);
    }

    /// Wake every waiter of `cv_id`.
    pub(crate) fn notify_all(&self, me: usize, cv_id: usize) {
        let g = self.lock();
        if g.aborted {
            return;
        }
        let mut g = self.schedule_and_wait(g, me, false);
        if let Some(list) = g.cv_waiters.get_mut(&cv_id) {
            let woken = std::mem::take(list);
            for t in woken {
                g.threads[t] = TState::Runnable;
            }
        }
        drop(g);
    }

    /// Register a new model thread (spawned but not yet granted).
    pub(crate) fn register_thread(&self) -> usize {
        let mut g = self.lock();
        let tid = g.threads.len();
        g.threads.push(TState::Runnable);
        tid
    }

    /// Entry point of a spawned model thread's OS thread: block until the
    /// scheduler grants it for the first time. Returns `false` if the
    /// execution aborted before the thread ever ran (the thread must then
    /// skip its body and go straight to [`ExecState::finish_thread`]).
    pub(crate) fn await_first_grant(&self, me: usize) -> bool {
        let mut g = self.lock();
        loop {
            if g.aborted {
                return false;
            }
            if g.active == me && matches!(g.threads[me], TState::Runnable) {
                return true;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Bookkeeping when a model thread's body returns or unwinds: mark it
    /// finished, wake joiners, record a real panic as a failure, and hand
    /// control to the next thread.
    pub(crate) fn finish_thread(
        &self,
        me: usize,
        outcome: &Result<(), Box<dyn std::any::Any + Send>>,
    ) {
        let mut g = self.lock();
        g.finished += 1;
        g.threads[me] = TState::Finished;
        for t in 0..g.threads.len() {
            if g.threads[t] == TState::Blocked(BlockKind::Join(me)) {
                g.threads[t] = TState::Runnable;
            }
        }
        if let Err(payload) = outcome {
            if !is_abort(&**payload) && !g.aborted {
                let message = format!("thread {me} panicked: {}", panic_message(&**payload));
                g.fail(FailureKind::Panic, message);
            }
        }
        if !g.aborted {
            g.pick_next(me, false);
        }
        drop(g);
        self.cv.notify_all();
    }

    /// Block until `target` finishes (a decision point like any other).
    pub(crate) fn join(&self, me: usize, target: usize) {
        let g = self.lock();
        if g.aborted {
            drop(g);
            self.abort_unwind();
        }
        let mut g = self.schedule_and_wait(g, me, false);
        while !matches!(g.threads[target], TState::Finished) {
            g.threads[me] = TState::Blocked(BlockKind::Join(target));
            g = self.schedule_and_wait(g, me, false);
        }
        drop(g);
    }

    /// Whether `target` has finished in the model (used by
    /// `JoinHandle::is_finished`; a decision point so polling loops that
    /// pair it with `yield_now` stay explorable without spinning).
    pub(crate) fn is_finished(&self, me: usize, target: usize) -> bool {
        self.yield_point(me);
        let g = self.lock();
        matches!(g.threads[target], TState::Finished)
    }

    /// Wait (on the caller thread, after its own body finished) for every
    /// model thread to finish, then extract the terminal state.
    fn drain(&self) -> (Option<Failure>, Vec<Decision>, u64) {
        let mut g = self.lock();
        while g.finished < g.threads.len() {
            self.cv.notify_all();
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        (g.failure.take(), std::mem::take(&mut g.decisions), g.steps)
    }
}

/// Run `f` once as model thread 0 under `exec`. Returns the terminal
/// failure (if any), the decision path taken, and the step count.
fn run_once<F>(exec: &Arc<ExecState>, f: F) -> (Option<Failure>, Vec<Decision>)
where
    F: FnOnce() + std::panic::UnwindSafe,
{
    set_ctx(Some(Ctx {
        exec: exec.clone(),
        tid: 0,
    }));
    let outcome = catch_unwind(AssertUnwindSafe(f));
    exec.finish_thread(0, &outcome);
    set_ctx(None);
    let (failure, decisions, _steps) = exec.drain();
    (failure, decisions)
}

/// Explore every schedule of `f` per `config`, returning the first
/// failing schedule or a report of what was covered.
///
/// The closure runs once per schedule; it must be deterministic apart
/// from the interleaving of instrumented operations.
pub fn explore_result<F>(config: Config, f: F) -> Result<Report, Failure>
where
    F: Fn() + std::panic::UnwindSafe + std::panic::RefUnwindSafe,
{
    if let Some(schedule) = config.replay.clone() {
        let exec = ExecState::new(&config, Mode::Replay(schedule), Vec::new());
        let (failure, _) = run_once(&exec, &f);
        return match failure {
            Some(fail) => Err(fail),
            None => Ok(Report {
                dfs_schedules: 1,
                random_schedules: 0,
                seed: config.seed,
                preemption_bound: config.preemption_bound,
            }),
        };
    }

    // Exhaustive DFS phase over the bounded-preemption decision tree.
    let mut prescription: Vec<Decision> = Vec::new();
    let mut dfs_schedules = 0u64;
    loop {
        let exec = ExecState::new(&config, Mode::Dfs, std::mem::take(&mut prescription));
        let (failure, mut decisions) = run_once(&exec, &f);
        if let Some(fail) = failure {
            return Err(fail);
        }
        dfs_schedules += 1;
        if dfs_schedules >= config.max_dfs_schedules {
            return Err(Failure {
                kind: FailureKind::ScheduleLimit,
                message: format!(
                    "DFS exceeded {} schedules; shrink the modeled protocol",
                    config.max_dfs_schedules
                ),
                schedule: Vec::new(),
            });
        }
        // Backtrack: advance the deepest decision with an unexplored
        // option; drop fully-explored suffixes. Empty stack = done.
        loop {
            match decisions.last_mut() {
                None => break,
                Some(last) => {
                    if last.chosen + 1 < last.options.len() {
                        last.chosen += 1;
                        break;
                    }
                    decisions.pop();
                }
            }
        }
        if decisions.is_empty() {
            break;
        }
        prescription = decisions;
    }

    // Seeded random phase: unbounded preemptions, deterministic from seed.
    for i in 0..config.random_schedules {
        let seed = config
            .seed
            .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let exec = ExecState::new(
            &Config {
                preemption_bound: usize::MAX,
                ..config.clone()
            },
            Mode::Random(SplitMix64(seed)),
            Vec::new(),
        );
        let (failure, _) = run_once(&exec, &f);
        if let Some(fail) = failure {
            return Err(Failure {
                message: format!(
                    "{} (random schedule {} of seed {:#x})",
                    fail.message, i, config.seed
                ),
                ..fail
            });
        }
    }

    Ok(Report {
        dfs_schedules,
        random_schedules: config.random_schedules,
        seed: config.seed,
        preemption_bound: config.preemption_bound,
    })
}

/// Like [`explore_result`] but panics on failure with the schedule and
/// seed needed to reproduce it — the form test suites call.
pub fn explore<F>(config: Config, f: F) -> Report
where
    F: Fn() + std::panic::UnwindSafe + std::panic::RefUnwindSafe,
{
    match explore_result(config, f) {
        Ok(report) => report,
        Err(fail) => panic!("model check failed — {fail}"),
    }
}

/// Spawn one model thread running `f`, returning its model tid and the
/// underlying OS join handle. Used by `loom_shim::thread::spawn`.
pub(crate) fn spawn_model<T, F>(ctx: &Ctx, f: F) -> (usize, std::thread::JoinHandle<T>)
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let tid = ctx.exec.register_thread();
    let exec = ctx.exec.clone();
    let handle = std::thread::Builder::new()
        .name(format!("loom-shim-t{tid}"))
        .spawn(move || {
            set_ctx(Some(Ctx {
                exec: exec.clone(),
                tid,
            }));
            let outcome: Result<T, Box<dyn std::any::Any + Send>> = if exec.await_first_grant(tid) {
                catch_unwind(AssertUnwindSafe(f))
            } else {
                Err(Box::new(ModelAbort))
            };
            let unit_outcome = match &outcome {
                Ok(_) => Ok(()),
                Err(_) => Err(Box::new(ModelAbort) as Box<dyn std::any::Any + Send>),
            };
            // A real panic must be recorded with its own payload message,
            // so re-inspect: finish_thread only reads the Err payload.
            match outcome {
                Ok(v) => {
                    exec.finish_thread(tid, &unit_outcome);
                    set_ctx(None);
                    v
                }
                Err(payload) => {
                    exec.finish_thread(tid, &Err(payload));
                    set_ctx(None);
                    resume_unwind(Box::new(ModelAbort))
                }
            }
        })
        .expect("spawn model thread");
    // Give the DFS the chance to run the child right away.
    ctx.exec.yield_point(ctx.tid);
    (tid, handle)
}
