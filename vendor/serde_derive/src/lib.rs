//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` implementations.
//!
//! Nothing in this workspace actually serializes (there is no `serde_json`
//! or bincode in the dependency closure); the derives exist so annotated
//! types compile. Each derive emits an empty token stream — no impls, no
//! bounds — which is exactly the surface the workspace needs offline.

use proc_macro::TokenStream;

/// Accept and discard a `#[derive(Serialize)]` (and any `#[serde(...)]`
/// field attributes, as the real derive does).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept and discard a `#[derive(Deserialize)]` (and any `#[serde(...)]`
/// field attributes, as the real derive does).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
