//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` implementations.
//!
//! Nothing in this workspace actually serializes (there is no `serde_json`
//! or bincode in the dependency closure); the derives exist so annotated
//! types compile. Each derive emits an empty token stream — no impls, no
//! bounds — which is exactly the surface the workspace needs offline.

use proc_macro::TokenStream;

/// Accept and discard a `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept and discard a `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
