//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships a minimal, API-compatible subset of `rand` 0.8: the
//! `RngCore` / `SeedableRng` / `Rng` traits, `Standard`-style value
//! generation for the types the workspace draws (`f64`, `u32`, `u64`,
//! `usize`, `bool`), integer/float range sampling, and `SliceRandom`
//! (Fisher–Yates shuffle + `choose`). Algorithms follow the upstream
//! definitions where cheap (e.g. 53-bit float generation), but bit-exact
//! output parity with upstream `rand` is *not* a goal — every consumer in
//! this workspace seeds its own RNG and only needs self-consistent
//! determinism.

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let w = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&w[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it through SplitMix64 exactly as
    /// documented for `rand_core` (so short seeds still fill wide states
    /// with well-mixed bytes).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64, used for seed expansion (public so sibling shims reuse it).
#[derive(Clone, Debug)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types drawable uniformly from an RNG (the `Standard` distribution).
pub trait StandardValue {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardValue for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardValue for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardValue for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardValue for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardValue for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

mod sealed_range {
    /// A range usable with [`super::Rng::gen_range`].
    pub trait SampleRange<T> {
        fn sample_single<R: super::RngCore + ?Sized>(self, rng: &mut R) -> T;
    }
}
pub use sealed_range::SampleRange;

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// Uniform draw from `[0, span)` (`span = 0` means the full 2^64 range) with
/// Lemire-style rejection to avoid modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Draw a value of type `T` (the `Standard` distribution).
    fn gen<T: StandardValue>(&mut self) -> T {
        T::draw(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::draw(self) < p
    }

    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice randomization utilities.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly pick one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Glob-import surface mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Counter(9);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = Counter(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5..=7u32);
            assert!((5..=7).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(7);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
