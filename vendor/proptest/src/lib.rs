//! Offline stand-in for `proptest`.
//!
//! Provides the subset the workspace's property suite uses: the
//! [`strategy::Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`collection::vec`], [`test_runner::ProptestConfig`], and the
//! [`proptest!`] / [`prop_assert!`] macros. Each test runs a configurable
//! number of cases from a deterministic per-test RNG (seeded from the test
//! name, so failures reproduce). Unlike real proptest there is **no
//! shrinking** — a failing case reports its case index and message only.

/// Deterministic case generation plumbing.
pub mod test_runner {
    /// Error type carried by `prop_assert!` failures.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failed assertion with an explanation.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Per-test configuration (only `cases` is honored).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config with `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64-based deterministic RNG for strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from a test name so every run replays the same cases.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(h)
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident/$i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generate vectors of values from `element`, with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a `proptest!` body; failures abort the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Define property tests. Each `#[test] fn name(x in strategy, ...) { .. }`
/// becomes a normal `#[test]` that replays `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@runner ($cfg); $($rest)*);
    };
    (@runner ($cfg:expr); $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let Err(e) = outcome {
                    panic!("property {} failed at case {case}/{}: {e}", stringify!($name), cfg.cases);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@runner ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens(max: usize) -> impl Strategy<Value = usize> {
        (0..max).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn mapped_strategy_applies(n in evens(50)) {
            prop_assert!(n.is_multiple_of(2), "odd value {n}");
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec((0..10u32, 0..5u32), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            for (a, b) in v {
                prop_assert!(a < 10 && b < 5);
            }
        }

        #[test]
        fn inclusive_float_range(x in 0.25f64..=0.75) {
            prop_assert!((0.25..=0.75).contains(&x));
        }

        #[test]
        fn early_ok_return_supported(n in 0..10usize) {
            if n > 100 {
                return Ok(());
            }
            prop_assert_eq!(n, n);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
