//! Offline stand-in for `crossbeam`'s channel module. Only the unbounded
//! channel surface the workspace uses is provided (`unbounded`,
//! `Sender::send`, `Receiver::recv` / `try_recv` / `iter`). Like real
//! crossbeam — and unlike raw `mpsc` — both halves are `Clone`, so a pool
//! of workers can compete for jobs on one shared queue.
//!
//! The queue is a `Mutex<VecDeque>` + `Condvar`: the lock is held only to
//! push or pop, never across a blocking wait, so a receiver parked in
//! `recv()` does not serialize the other consumers (the failure mode of
//! the naive `Mutex<mpsc::Receiver>` wrapping this shim started with).

/// Multi-producer, multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender(..)")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().expect("channel poisoned").senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().expect("channel poisoned");
            inner.senders -= 1;
            if inner.senders == 0 {
                // Receivers blocked in recv() must observe the hangup.
                drop(inner);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a value; errors only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().expect("channel poisoned");
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    /// The receiving half of an unbounded channel. Cloning yields another
    /// handle onto the *same* queue: each message is delivered to exactly
    /// one receiver, crossbeam's work-queue semantics.
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver(..)")
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().expect("channel poisoned").receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.inner.lock().expect("channel poisoned").receivers -= 1;
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives; errors once all senders are gone
        /// and the queue has drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().expect("channel poisoned");
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.0.ready.wait(inner).expect("channel poisoned");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.0.inner.lock().expect("channel poisoned");
            match inner.queue.pop_front() {
                Some(v) => Ok(v),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator over received values; ends when all senders
        /// are gone.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn cross_thread_roundtrip() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            let h = std::thread::spawn(move || {
                tx2.send(41).unwrap();
                tx.send(1).unwrap();
            });
            let sum = rx.recv().unwrap() + rx.recv().unwrap();
            h.join().unwrap();
            assert_eq!(sum, 42);
            assert!(rx.try_recv().is_err());
        }

        #[test]
        fn cloned_receivers_share_one_queue() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            // Each message goes to exactly one receiver handle.
            let mut got = vec![rx.recv().unwrap(), rx2.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
            assert!(rx.recv().is_err());
            assert!(rx2.recv().is_err());
        }

        #[test]
        fn competing_consumers_drain_everything() {
            let (tx, rx) = unbounded::<u64>();
            let n = 1000u64;
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            for v in 1..=n {
                tx.send(v).unwrap();
            }
            drop(tx);
            let total: u64 = workers.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, n * (n + 1) / 2);
        }

        #[test]
        fn try_recv_is_nonblocking_while_another_handle_waits_in_recv() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            // Park one handle in recv() on another thread.
            let parked = std::thread::spawn(move || rx2.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            // The parked recv must not wedge this try_recv.
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
            tx.send(5).unwrap();
            assert_eq!(parked.join().unwrap().unwrap(), 5);
        }

        #[test]
        fn send_fails_once_all_receivers_dropped() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn iter_ends_on_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            tx.send(8).unwrap();
            drop(tx);
            let all: Vec<u32> = rx.iter().collect();
            assert_eq!(all, vec![7, 8]);
        }

        #[test]
        fn recv_errors_only_after_drain() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv().unwrap(), 9);
            assert!(rx.recv().is_err());
        }
    }
}
