//! Offline stand-in for the parts of `crossbeam` the workspace uses:
//!
//! * [`channel`] — unbounded MPMC channels (`unbounded`, `Sender::send`,
//!   `Receiver::recv` / `try_recv` / `iter`). Like real crossbeam — and
//!   unlike raw `mpsc` — both halves are `Clone`, so a pool of workers can
//!   compete for jobs on one shared queue.
//! * [`deque`] — the `crossbeam-deque` work-stealing surface (`Worker`,
//!   `Stealer`, `Injector`, `Steal`) that `rtr-serve`'s scheduler builds
//!   per-worker queues from.
//!
//! The channel queue is a `Mutex<VecDeque>` + `Condvar`: the lock is held
//! only to push or pop, never across a blocking wait, so a receiver parked
//! in `recv()` does not serialize the other consumers (the failure mode of
//! the naive `Mutex<mpsc::Receiver>` wrapping this shim started with).
//! The deques trade crossbeam's lock-free Chase-Lev buffers for short
//! critical sections around a `VecDeque` — same API and semantics, shim
//! performance: what matters for the scheduler is that each worker owns
//! its own queue head and batch-refills from the shared injector, so the
//! per-job cost of the one global lock is amortized away.

/// Multi-producer, multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::Arc;

    // Under the `rtr_check` feature the shim's internal lock/condvar are
    // loom-shim's instrumented types, which makes every channel
    // operation a model decision point; production builds use std.
    #[cfg(feature = "rtr_check")]
    use loom_shim::sync::{Condvar, Mutex};
    #[cfg(not(feature = "rtr_check"))]
    use std::sync::{Condvar, Mutex};

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender(..)")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().expect("channel poisoned").senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().expect("channel poisoned");
            inner.senders -= 1;
            if inner.senders == 0 {
                // Receivers blocked in recv() must observe the hangup.
                drop(inner);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a value; errors only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().expect("channel poisoned");
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    /// The receiving half of an unbounded channel. Cloning yields another
    /// handle onto the *same* queue: each message is delivered to exactly
    /// one receiver, crossbeam's work-queue semantics.
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver(..)")
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().expect("channel poisoned").receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.inner.lock().expect("channel poisoned").receivers -= 1;
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives; errors once all senders are gone
        /// and the queue has drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().expect("channel poisoned");
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.0.ready.wait(inner).expect("channel poisoned");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.0.inner.lock().expect("channel poisoned");
            match inner.queue.pop_front() {
                Some(v) => Ok(v),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator over received values; ends when all senders
        /// are gone.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn cross_thread_roundtrip() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            let h = std::thread::spawn(move || {
                tx2.send(41).unwrap();
                tx.send(1).unwrap();
            });
            let sum = rx.recv().unwrap() + rx.recv().unwrap();
            h.join().unwrap();
            assert_eq!(sum, 42);
            assert!(rx.try_recv().is_err());
        }

        #[test]
        fn cloned_receivers_share_one_queue() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            // Each message goes to exactly one receiver handle.
            let mut got = vec![rx.recv().unwrap(), rx2.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
            assert!(rx.recv().is_err());
            assert!(rx2.recv().is_err());
        }

        #[test]
        fn competing_consumers_drain_everything() {
            let (tx, rx) = unbounded::<u64>();
            let n = 1000u64;
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            for v in 1..=n {
                tx.send(v).unwrap();
            }
            drop(tx);
            let total: u64 = workers.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, n * (n + 1) / 2);
        }

        #[test]
        fn try_recv_is_nonblocking_while_another_handle_waits_in_recv() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            // Park one handle in recv() on another thread.
            let parked = std::thread::spawn(move || rx2.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            // The parked recv must not wedge this try_recv.
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
            tx.send(5).unwrap();
            assert_eq!(parked.join().unwrap().unwrap(), 5);
        }

        #[test]
        fn send_fails_once_all_receivers_dropped() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn iter_ends_on_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            tx.send(8).unwrap();
            drop(tx);
            let all: Vec<u32> = rx.iter().collect();
            assert_eq!(all, vec![7, 8]);
        }

        #[test]
        fn recv_errors_only_after_drain() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv().unwrap(), 9);
            assert!(rx.recv().is_err());
        }
    }
}

/// Work-stealing deques, mirroring the `crossbeam-deque` API subset the
/// workspace uses.
///
/// Each consumer owns a [`deque::Worker`] (its local FIFO queue) and hands
/// out [`deque::Stealer`]s so siblings can take work when their own queue
/// runs dry. A shared [`deque::Injector`] is the global submission queue:
/// producers `push` into it and consumers batch-refill from it with
/// [`deque::Injector::steal_batch_and_pop`], which moves up to half of the
/// injector's backlog into the consumer's local queue in one lock
/// acquisition.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::Arc;

    // See `channel`: instrumented internals under `rtr_check`, std
    // otherwise.
    #[cfg(feature = "rtr_check")]
    use loom_shim::sync::Mutex;
    #[cfg(not(feature = "rtr_check"))]
    use std::sync::Mutex;

    /// Largest number of items a single `steal_batch_and_pop` moves
    /// (matches crossbeam's batch limit).
    const MAX_BATCH: usize = 32;

    /// The result of a steal attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty at the time of the call.
        Empty,
        /// One item was successfully stolen.
        Success(T),
        /// The steal lost a race and should be retried. (The shim's
        /// mutex-backed queues never lose races, so this variant is never
        /// produced here; it exists for API compatibility with real
        /// crossbeam, whose lock-free buffers can.)
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen item, if the steal succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }

        /// True if the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    fn drain_batch_into<T>(src: &mut VecDeque<T>, dst: &Worker<T>) -> Steal<T> {
        match src.pop_front() {
            None => Steal::Empty,
            Some(first) => {
                // Move up to half the backlog (capped) so one refill
                // amortizes many pops but siblings still find work.
                let extra = (src.len() / 2).min(MAX_BATCH - 1);
                if extra > 0 {
                    let mut dst_q = dst.queue.lock().expect("deque poisoned");
                    for _ in 0..extra {
                        match src.pop_front() {
                            Some(v) => dst_q.push_back(v),
                            None => break,
                        }
                    }
                }
                Steal::Success(first)
            }
        }
    }

    /// A FIFO queue owned by one consumer thread. The owner pushes and
    /// pops; [`Stealer`]s created from it take items from the same queue.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> std::fmt::Debug for Worker<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Worker(..)")
        }
    }

    impl<T> Default for Worker<T> {
        fn default() -> Self {
            Self::new_fifo()
        }
    }

    impl<T> Worker<T> {
        /// Create an empty FIFO worker queue.
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Push an item onto the back of the queue.
        pub fn push(&self, value: T) {
            self.queue.lock().expect("deque poisoned").push_back(value);
        }

        /// Pop the item at the front of the queue (FIFO order).
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("deque poisoned").pop_front()
        }

        /// Create a handle other threads can steal from.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("deque poisoned").len()
        }

        /// True if no items are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// A handle for taking items from another consumer's [`Worker`] queue.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> std::fmt::Debug for Stealer<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Stealer(..)")
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steal one item from the front of the victim's queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("deque poisoned").pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// Steal a batch of items from the victim, pushing all but the
        /// first into `dest` and returning the first.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut src = self.queue.lock().expect("deque poisoned");
            drain_batch_into(&mut src, dest)
        }

        /// Number of items in the victim's queue.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("deque poisoned").len()
        }

        /// True if the victim's queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// A shared FIFO submission queue any thread can push into and any
    /// consumer can (batch-)steal from.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> std::fmt::Debug for Injector<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Injector(..)")
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Create an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Push an item onto the back of the queue.
        pub fn push(&self, value: T) {
            self.queue.lock().expect("deque poisoned").push_back(value);
        }

        /// Steal one item from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("deque poisoned").pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// Steal a batch of items, pushing all but the first into `dest`
        /// and returning the first.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut src = self.queue.lock().expect("deque poisoned");
            drain_batch_into(&mut src, dest)
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("deque poisoned").len()
        }

        /// True if no items are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn worker_is_fifo() {
            let w = Worker::new_fifo();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(w.pop(), Some(1));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), Some(3));
            assert_eq!(w.pop(), None);
        }

        #[test]
        fn stealer_takes_from_the_front() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            w.push(10);
            w.push(20);
            assert_eq!(s.steal().success(), Some(10));
            assert_eq!(w.pop(), Some(20));
            assert!(s.steal().is_empty());
        }

        #[test]
        fn injector_batch_moves_half_capped() {
            let inj = Injector::new();
            for v in 0..100 {
                inj.push(v);
            }
            let w = Worker::new_fifo();
            // First item returned directly, up to MAX_BATCH-1 moved over.
            assert_eq!(inj.steal_batch_and_pop(&w).success(), Some(0));
            assert_eq!(w.len(), MAX_BATCH - 1);
            assert_eq!(inj.len(), 100 - MAX_BATCH);
            // FIFO order survives the batch move.
            assert_eq!(w.pop(), Some(1));
            assert_eq!(w.pop(), Some(2));
        }

        #[test]
        fn batch_from_small_source_takes_half() {
            let inj = Injector::new();
            for v in 0..9 {
                inj.push(v);
            }
            let w = Worker::new_fifo();
            assert_eq!(inj.steal_batch_and_pop(&w).success(), Some(0));
            // 8 left after the pop; half of those move.
            assert_eq!(w.len(), 4);
            assert_eq!(inj.len(), 4);
        }

        #[test]
        fn steal_batch_from_empty_is_empty() {
            let inj: Injector<u32> = Injector::new();
            let w = Worker::new_fifo();
            assert!(inj.steal_batch_and_pop(&w).is_empty());
            assert!(w.is_empty());
        }

        #[test]
        fn concurrent_producers_and_stealing_consumers_lose_nothing() {
            use std::sync::atomic::{AtomicU64, Ordering};
            let inj = Arc::new(Injector::new());
            let total = Arc::new(AtomicU64::new(0));
            let n = 10_000u64;

            let workers: Vec<Worker<u64>> = (0..4).map(|_| Worker::new_fifo()).collect();
            let stealers: Vec<Stealer<u64>> = workers.iter().map(|w| w.stealer()).collect();

            let producer = {
                let inj = Arc::clone(&inj);
                std::thread::spawn(move || {
                    for v in 1..=n {
                        inj.push(v);
                    }
                })
            };

            let handles: Vec<_> = workers
                .into_iter()
                .enumerate()
                .map(|(i, w)| {
                    let inj = Arc::clone(&inj);
                    let total = Arc::clone(&total);
                    let sibs: Vec<Stealer<u64>> = stealers
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, s)| s.clone())
                        .collect();
                    std::thread::spawn(move || {
                        let mut idle = 0u32;
                        loop {
                            let item = w
                                .pop()
                                .or_else(|| inj.steal_batch_and_pop(&w).success())
                                .or_else(|| sibs.iter().find_map(|s| s.steal().success()));
                            match item {
                                Some(v) => {
                                    idle = 0;
                                    // ordering: Relaxed — the total is
                                    // only read after join().
                                    total.fetch_add(v, Ordering::Relaxed);
                                }
                                None => {
                                    idle += 1;
                                    if idle > 200 {
                                        break;
                                    }
                                    std::thread::yield_now();
                                }
                            }
                        }
                    })
                })
                .collect();

            producer.join().unwrap();
            for h in handles {
                h.join().unwrap();
            }
            // Consumers only stop after many consecutive empty scans, well
            // after the producer finished; every item must be accounted for.
            // ordering: Relaxed — join() established happens-before.
            assert_eq!(total.load(Ordering::Relaxed), n * (n + 1) / 2);
            assert!(inj.is_empty());
        }
    }
}
