//! Offline stand-in for `crossbeam`'s channel module, backed by
//! `std::sync::mpsc`. Only the unbounded channel surface the distributed
//! simulation uses is provided (`unbounded`, `Sender::send`,
//! `Receiver::recv`/`try_recv`/`iter`). Unlike crossbeam, the receiver is
//! not `Clone` — the workspace never clones receivers.

/// Multi-producer channels.
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    // Derived Clone would require T: Clone; the inner sender clones freely.
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a value; errors only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives; errors once all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking iterator over received values.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn cross_thread_roundtrip() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            let h = std::thread::spawn(move || {
                tx2.send(41).unwrap();
                tx.send(1).unwrap();
            });
            let sum = rx.recv().unwrap() + rx.recv().unwrap();
            h.join().unwrap();
            assert_eq!(sum, 42);
            assert!(rx.try_recv().is_err());
        }
    }
}
